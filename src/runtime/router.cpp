#include "runtime/router.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "common/string_util.hpp"

namespace homunculus::runtime {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kNoModel = std::numeric_limits<std::size_t>::max();

}  // namespace

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::kClosed: return "closed";
      case BreakerState::kOpen: return "open";
      case BreakerState::kHalfOpen: return "half-open";
    }
    return "closed";
}

Router::Router(std::shared_ptr<ModelRegistry> registry, RouteConfig config,
               telemetry::MetricRegistry *metrics)
    : registry_(std::move(registry)), config_(std::move(config)),
      metricsOwned_(metrics != nullptr
                        ? nullptr
                        : std::make_unique<telemetry::MetricRegistry>()),
      metrics_(metrics != nullptr ? metrics : metricsOwned_.get())
{
    if (!registry_)
        throw std::runtime_error("Router: registry is null");
    if (config_.defaultModel.empty())
        throw std::runtime_error("Router: defaultModel is empty");
    if (config_.maxChainDepth == 0)
        throw std::runtime_error("Router: maxChainDepth must be >= 1");

    // Resolve every referenced model once, in route order (default,
    // lane bindings, chain endpoints), deduplicated — the index into
    // models_ is the identity runBatch and the stats use.
    auto intern = [this](const std::string &name) {
        auto it = std::find(models_.begin(), models_.end(), name);
        if (it != models_.end())
            return static_cast<std::size_t>(it - models_.begin());
        if (!registry_->contains(name))
            throw std::runtime_error(
                "Router: model '" + name + "' is not loaded");
        models_.push_back(name);
        return models_.size() - 1;
    };

    defaultModel_ = intern(config_.defaultModel);
    laneModel_.reserve(config_.laneModels.size());
    for (const std::string &name : config_.laneModels)
        laneModel_.push_back(name.empty() ? defaultModel_ : intern(name));
    for (const ChainRule &rule : config_.chain) {
        intern(rule.fromModel);
        intern(rule.toModel);
    }
    for (const FallbackRule &rule : config_.fallbacks) {
        intern(rule.model);
        if (!rule.toModel.empty())
            intern(rule.toModel);
    }

    // All routed models consume the same admitted row, so their input
    // widths must agree; pin each model's class count for rule checks.
    std::vector<int> classes(models_.size(), 0);
    for (std::size_t m = 0; m < models_.size(); ++m) {
        std::shared_ptr<const ModelEpoch> epoch =
            registry_->active(models_[m]);
        classes[m] = epoch->numClasses();
        if (m == 0) {
            inputDim_ = epoch->inputDim();
        } else if (epoch->inputDim() != inputDim_) {
            throw std::runtime_error(common::format(
                "Router: model '%s' consumes %zu features but '%s' "
                "consumes %zu — routed models must share one schema",
                models_[m].c_str(), epoch->inputDim(),
                models_[0].c_str(), inputDim_));
        }
    }

    nextModel_.resize(models_.size());
    for (std::size_t m = 0; m < models_.size(); ++m)
        nextModel_[m].assign(static_cast<std::size_t>(classes[m]),
                             kNoModel);
    for (const ChainRule &rule : config_.chain) {
        std::size_t from = indexOf(rule.fromModel);
        std::size_t to = indexOf(rule.toModel);
        if (rule.label < 0 || rule.label >= classes[from])
            throw std::runtime_error(common::format(
                "Router: chain rule label %d is outside '%s' %d-class "
                "output space",
                rule.label, rule.fromModel.c_str(), classes[from]));
        std::size_t slot = static_cast<std::size_t>(rule.label);
        if (nextModel_[from][slot] != kNoModel)
            throw std::runtime_error(common::format(
                "Router: duplicate chain rule for ('%s', label %d)",
                rule.fromModel.c_str(), rule.label));
        nextModel_[from][slot] = to;
    }

    // Fallback rules: exactly one destination each (a model or a static
    // verdict in the broken model's class space), at most one per
    // model, no self-loops.
    fallbackModel_.assign(models_.size(), kNoModel);
    fallbackLabel_.assign(models_.size(), -1);
    for (const FallbackRule &rule : config_.fallbacks) {
        std::size_t from = indexOf(rule.model);
        bool has_model = !rule.toModel.empty();
        bool has_label = rule.label >= 0;
        if (has_model == has_label)
            throw std::runtime_error(common::format(
                "Router: fallback for '%s' must name a model or a "
                "label, not %s",
                rule.model.c_str(), has_model ? "both" : "neither"));
        if (fallbackModel_[from] != kNoModel || fallbackLabel_[from] >= 0)
            throw std::runtime_error(common::format(
                "Router: duplicate fallback rule for '%s'",
                rule.model.c_str()));
        if (has_model) {
            std::size_t to = indexOf(rule.toModel);
            if (to == from)
                throw std::runtime_error(common::format(
                    "Router: fallback for '%s' routes to itself",
                    rule.model.c_str()));
            fallbackModel_[from] = to;
        } else {
            if (rule.label >= classes[from])
                throw std::runtime_error(common::format(
                    "Router: fallback label %d is outside '%s' "
                    "%d-class output space",
                    rule.label, rule.model.c_str(), classes[from]));
            fallbackLabel_[from] = rule.label;
        }
    }
    breakers_.resize(models_.size());

    // Instruments, registered up front (even the ones this config can
    // never bump, so exports always carry the full breaker key set).
    deadlineTruncated_ = &metrics_->counter("router.deadline_truncated");
    modelIns_.resize(models_.size());
    for (std::size_t m = 0; m < models_.size(); ++m) {
        telemetry::Labels labels{{"model", models_[m]}};
        ModelInstruments &ins = modelIns_[m];
        ins.hops = &metrics_->counter("router.hops", labels);
        ins.hopRows = &metrics_->counter("router.hop_rows", labels);
        ins.opens = &metrics_->counter("router.breaker.opens", labels);
        ins.failures =
            &metrics_->counter("router.breaker.failures", labels);
        ins.probes = &metrics_->counter("router.breaker.probes", labels);
        ins.fallbackRows =
            &metrics_->counter("router.breaker.fallback_rows", labels);
    }
}

std::size_t
Router::indexOf(const std::string &model) const
{
    auto it = std::find(models_.begin(), models_.end(), model);
    return static_cast<std::size_t>(it - models_.begin());
}

const std::string &
Router::modelForLane(std::size_t lane) const
{
    return models_[lane < laneModel_.size() ? laneModel_[lane]
                                            : defaultModel_];
}

Router::Snapshot
Router::snapshot() const
{
    Snapshot snap;
    snap.epochs.reserve(models_.size());
    for (const std::string &name : models_)
        snap.epochs.push_back(registry_->active(name));
    return snap;
}

bool
Router::breakerAllows(std::size_t model) const
{
    std::lock_guard<std::mutex> lock(breakerMutex_);
    Breaker &breaker = breakers_[model];
    switch (breaker.state) {
      case BreakerState::kClosed:
      case BreakerState::kHalfOpen:
        return true;
      case BreakerState::kOpen: {
        auto cooled = breaker.openedAt +
                      std::chrono::microseconds(config_.breakerCooldownUs);
        if (Clock::now() < cooled)
            return false;
        // Cooldown elapsed: half-open and let this group through as
        // the probe. Its outcome (recordSuccess / recordFailure)
        // decides whether the breaker closes or reopens.
        breaker.state = BreakerState::kHalfOpen;
        modelIns_[model].probes->add();
        return true;
      }
    }
    return true;
}

void
Router::recordFailure(std::size_t model) const
{
    std::lock_guard<std::mutex> lock(breakerMutex_);
    Breaker &breaker = breakers_[model];
    modelIns_[model].failures->add();
    ++breaker.consecutive;
    bool reopen = breaker.state == BreakerState::kHalfOpen;
    bool trip = breaker.state == BreakerState::kClosed &&
                breaker.consecutive >= config_.breakerThreshold;
    if (reopen || trip) {
        breaker.state = BreakerState::kOpen;
        breaker.openedAt = Clock::now();
        modelIns_[model].opens->add();
    }
}

void
Router::recordSuccess(std::size_t model) const
{
    std::lock_guard<std::mutex> lock(breakerMutex_);
    Breaker &breaker = breakers_[model];
    breaker.consecutive = 0;
    if (breaker.state == BreakerState::kHalfOpen)
        breaker.state = BreakerState::kClosed;
}

BreakerSnapshot
Router::breaker(std::size_t model) const
{
    // The state-machine fields come from under the mutex; the
    // monotonic counts are views over the registry counters.
    std::lock_guard<std::mutex> lock(breakerMutex_);
    const Breaker &breaker = breakers_.at(model);
    const ModelInstruments &ins = modelIns_.at(model);
    BreakerSnapshot snap;
    snap.state = breaker.state;
    snap.opens = ins.opens->value();
    snap.failures = ins.failures->value();
    snap.consecutiveFailures = breaker.consecutive;
    snap.probes = ins.probes->value();
    snap.fallbackRows = ins.fallbackRows->value();
    return snap;
}

RouteBatchOutcome
Router::runBatch(const Snapshot &snapshot, std::size_t lane,
                 const Request *requests, std::size_t rows,
                 std::vector<int> &final_labels,
                 std::vector<RouteTrace> *traces,
                 std::vector<RouteStepStats> &steps,
                 Scratch &scratch,
                 faults::FaultInjector *injector) const
{
    RouteBatchOutcome outcome;
    final_labels.assign(rows, 0);
    steps.clear();
    if (traces) {
        traces->resize(rows);
        for (RouteTrace &trace : *traces)
            trace.hops.clear();
    }
    if (rows == 0)
        return outcome;

    if (scratch.input.cols() != inputDim_)
        scratch.input = math::Matrix(rows, inputDim_);
    scratch.current.resize(models_.size());
    scratch.next.resize(models_.size());
    for (std::vector<std::size_t> &group : scratch.current)
        group.clear();
    for (std::vector<std::size_t> &group : scratch.next)
        group.clear();

    // Round 0: every row enters at its lane's model.
    std::size_t entry =
        lane < laneModel_.size() ? laneModel_[lane] : defaultModel_;
    scratch.current[entry].reserve(rows);
    for (std::size_t r = 0; r < rows; ++r)
        scratch.current[entry].push_back(r);

    for (std::size_t depth = 0; depth < config_.maxChainDepth; ++depth) {
        bool any = false;
        // Breaker gate, before any execution this round: a group bound
        // for an open breaker follows the fallback chain — merging into
        // another model's group (executed below, same round) or
        // resolving to the static verdict. Gating the whole round first
        // keeps redirects independent of model iteration order.
        if (config_.breakerThreshold != 0) {
            for (std::size_t m = 0; m < models_.size(); ++m) {
                std::vector<std::size_t> &group = scratch.current[m];
                if (group.empty())
                    continue;
                std::size_t target = m;
                int static_label = -1;
                // Bounded walk: each step moves to a distinct model, so
                // models_.size() steps either find a runnable target or
                // prove every fallback on the path is open too.
                std::size_t steps_taken = 0;
                while (!breakerAllows(target)) {
                    modelIns_[target].fallbackRows->add(group.size());
                    if (fallbackLabel_[target] >= 0) {
                        static_label = fallbackLabel_[target];
                        break;
                    }
                    if (fallbackModel_[target] == kNoModel ||
                        ++steps_taken > models_.size())
                        throw std::runtime_error(common::format(
                            "router: model '%s' circuit breaker is "
                            "open and no fallback is available",
                            models_[target].c_str()));
                    target = fallbackModel_[target];
                }
                if (static_label >= 0) {
                    // The broken model's static verdict: the row is
                    // final — no chain rule fires off a fallback label.
                    for (std::size_t r : group) {
                        final_labels[r] = static_label;
                        if (traces)
                            (*traces)[r].hops.push_back(
                                {models_[target], 0, static_label});
                    }
                    outcome.fallbackRows += group.size();
                    group.clear();
                } else if (target != m) {
                    outcome.fallbackRows += group.size();
                    scratch.current[target].insert(
                        scratch.current[target].end(), group.begin(),
                        group.end());
                    group.clear();
                }
            }
        }
        // One round: each model with pending rows runs them as one
        // engine batch against its *snapshot* epoch.
        for (std::size_t m = 0; m < models_.size(); ++m) {
            const std::vector<std::size_t> &group = scratch.current[m];
            if (group.empty())
                continue;
            any = true;
            const ModelEpoch &epoch = *snapshot.epochs[m];

            // Gather the group's raw rows, applying this epoch's
            // artifact scaler — each hop standardizes with its own
            // model's training moments, never a neighbor's.
            scratch.input.resizeRows(group.size());
            for (std::size_t g = 0; g < group.size(); ++g) {
                const std::vector<double> &raw =
                    requests[group[g]].features;
                double *row = scratch.input.rowPtr(g);
                if (epoch.scaler) {
                    const std::vector<double> &means =
                        epoch.scaler->means();
                    const std::vector<double> &stds =
                        epoch.scaler->stddevs();
                    for (std::size_t c = 0; c < inputDim_; ++c)
                        row[c] = (raw[c] - means[c]) / stds[c];
                } else {
                    for (std::size_t c = 0; c < inputDim_; ++c)
                        row[c] = raw[c];
                }
            }
            scratch.labels.resize(group.size());

            auto started = Clock::now();
            try {
                if (injector && injector->armed()) {
                    injector->maybe(faults::kSiteRouterHop);
                    injector->maybe(
                        (std::string(faults::kSiteRouterHop) + "." +
                         models_[m])
                            .c_str());
                }
                epoch.engine.run(scratch.input, scratch.labels.data());
            } catch (...) {
                // The batch is the caller's to fail or retry; the
                // breaker just learns this model is misbehaving.
                if (config_.breakerThreshold != 0)
                    recordFailure(m);
                throw;
            }
            if (config_.breakerThreshold != 0)
                recordSuccess(m);
            auto finished = Clock::now();

            modelIns_[m].hops->add();
            modelIns_[m].hopRows->add(group.size());

            RouteStepStats step;
            step.model = m;
            step.version = epoch.version;
            step.rows = group.size();
            step.engineUs =
                std::chrono::duration<double, std::micro>(finished -
                                                          started)
                    .count();
            steps.push_back(step);

            for (std::size_t g = 0; g < group.size(); ++g) {
                std::size_t r = group[g];
                int label = scratch.labels[g];
                // Every hop writes the row's label; a later hop simply
                // overwrites, so the last executed model's verdict is
                // final without tracking terminal rows separately.
                final_labels[r] = label;
                if (traces)
                    (*traces)[r].hops.push_back(
                        {models_[m], epoch.version, label});
                std::size_t successor =
                    static_cast<std::size_t>(label) < nextModel_[m].size()
                        ? nextModel_[m][static_cast<std::size_t>(label)]
                        : kNoModel;
                if (successor != kNoModel &&
                    depth + 1 < config_.maxChainDepth) {
                    // Deadline gate: a row over its admission budget
                    // keeps this hop's label instead of starting a hop
                    // it can't afford.
                    if (config_.deadlineUs != 0 &&
                        finished >=
                            requests[r].enqueuedAt +
                                std::chrono::microseconds(
                                    config_.deadlineUs)) {
                        ++outcome.deadlineTruncated;
                        deadlineTruncated_->add();
                    } else
                        scratch.next[successor].push_back(r);
                }
            }
        }
        if (!any)
            break;
        std::swap(scratch.current, scratch.next);
        for (std::vector<std::size_t> &group : scratch.next)
            group.clear();
    }
    return outcome;
}

}  // namespace homunculus::runtime
