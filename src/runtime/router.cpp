#include "runtime/router.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "common/string_util.hpp"

namespace homunculus::runtime {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kNoModel = std::numeric_limits<std::size_t>::max();

}  // namespace

Router::Router(std::shared_ptr<ModelRegistry> registry, RouteConfig config)
    : registry_(std::move(registry)), config_(std::move(config))
{
    if (!registry_)
        throw std::runtime_error("Router: registry is null");
    if (config_.defaultModel.empty())
        throw std::runtime_error("Router: defaultModel is empty");
    if (config_.maxChainDepth == 0)
        throw std::runtime_error("Router: maxChainDepth must be >= 1");

    // Resolve every referenced model once, in route order (default,
    // lane bindings, chain endpoints), deduplicated — the index into
    // models_ is the identity runBatch and the stats use.
    auto intern = [this](const std::string &name) {
        auto it = std::find(models_.begin(), models_.end(), name);
        if (it != models_.end())
            return static_cast<std::size_t>(it - models_.begin());
        if (!registry_->contains(name))
            throw std::runtime_error(
                "Router: model '" + name + "' is not loaded");
        models_.push_back(name);
        return models_.size() - 1;
    };

    defaultModel_ = intern(config_.defaultModel);
    laneModel_.reserve(config_.laneModels.size());
    for (const std::string &name : config_.laneModels)
        laneModel_.push_back(name.empty() ? defaultModel_ : intern(name));
    for (const ChainRule &rule : config_.chain) {
        intern(rule.fromModel);
        intern(rule.toModel);
    }

    // All routed models consume the same admitted row, so their input
    // widths must agree; pin each model's class count for rule checks.
    std::vector<int> classes(models_.size(), 0);
    for (std::size_t m = 0; m < models_.size(); ++m) {
        std::shared_ptr<const ModelEpoch> epoch =
            registry_->active(models_[m]);
        classes[m] = epoch->numClasses();
        if (m == 0) {
            inputDim_ = epoch->inputDim();
        } else if (epoch->inputDim() != inputDim_) {
            throw std::runtime_error(common::format(
                "Router: model '%s' consumes %zu features but '%s' "
                "consumes %zu — routed models must share one schema",
                models_[m].c_str(), epoch->inputDim(),
                models_[0].c_str(), inputDim_));
        }
    }

    nextModel_.resize(models_.size());
    for (std::size_t m = 0; m < models_.size(); ++m)
        nextModel_[m].assign(static_cast<std::size_t>(classes[m]),
                             kNoModel);
    for (const ChainRule &rule : config_.chain) {
        std::size_t from = indexOf(rule.fromModel);
        std::size_t to = indexOf(rule.toModel);
        if (rule.label < 0 || rule.label >= classes[from])
            throw std::runtime_error(common::format(
                "Router: chain rule label %d is outside '%s' %d-class "
                "output space",
                rule.label, rule.fromModel.c_str(), classes[from]));
        std::size_t slot = static_cast<std::size_t>(rule.label);
        if (nextModel_[from][slot] != kNoModel)
            throw std::runtime_error(common::format(
                "Router: duplicate chain rule for ('%s', label %d)",
                rule.fromModel.c_str(), rule.label));
        nextModel_[from][slot] = to;
    }
}

std::size_t
Router::indexOf(const std::string &model) const
{
    auto it = std::find(models_.begin(), models_.end(), model);
    return static_cast<std::size_t>(it - models_.begin());
}

const std::string &
Router::modelForLane(std::size_t lane) const
{
    return models_[lane < laneModel_.size() ? laneModel_[lane]
                                            : defaultModel_];
}

Router::Snapshot
Router::snapshot() const
{
    Snapshot snap;
    snap.epochs.reserve(models_.size());
    for (const std::string &name : models_)
        snap.epochs.push_back(registry_->active(name));
    return snap;
}

void
Router::runBatch(const Snapshot &snapshot, std::size_t lane,
                 const std::vector<Request> &requests,
                 std::vector<int> &final_labels,
                 std::vector<RouteTrace> *traces,
                 std::vector<RouteStepStats> &steps,
                 Scratch &scratch) const
{
    const std::size_t rows = requests.size();
    final_labels.assign(rows, 0);
    steps.clear();
    if (traces) {
        traces->resize(rows);
        for (RouteTrace &trace : *traces)
            trace.hops.clear();
    }
    if (rows == 0)
        return;

    if (scratch.input.cols() != inputDim_)
        scratch.input = math::Matrix(rows, inputDim_);
    scratch.current.resize(models_.size());
    scratch.next.resize(models_.size());
    for (std::vector<std::size_t> &group : scratch.current)
        group.clear();
    for (std::vector<std::size_t> &group : scratch.next)
        group.clear();

    // Round 0: every row enters at its lane's model.
    std::size_t entry =
        lane < laneModel_.size() ? laneModel_[lane] : defaultModel_;
    scratch.current[entry].reserve(rows);
    for (std::size_t r = 0; r < rows; ++r)
        scratch.current[entry].push_back(r);

    for (std::size_t depth = 0; depth < config_.maxChainDepth; ++depth) {
        bool any = false;
        // One round: each model with pending rows runs them as one
        // engine batch against its *snapshot* epoch.
        for (std::size_t m = 0; m < models_.size(); ++m) {
            const std::vector<std::size_t> &group = scratch.current[m];
            if (group.empty())
                continue;
            any = true;
            const ModelEpoch &epoch = *snapshot.epochs[m];

            // Gather the group's raw rows, applying this epoch's
            // artifact scaler — each hop standardizes with its own
            // model's training moments, never a neighbor's.
            scratch.input.resizeRows(group.size());
            for (std::size_t g = 0; g < group.size(); ++g) {
                const std::vector<double> &raw =
                    requests[group[g]].features;
                double *row = scratch.input.rowPtr(g);
                if (epoch.scaler) {
                    const std::vector<double> &means =
                        epoch.scaler->means();
                    const std::vector<double> &stds =
                        epoch.scaler->stddevs();
                    for (std::size_t c = 0; c < inputDim_; ++c)
                        row[c] = (raw[c] - means[c]) / stds[c];
                } else {
                    for (std::size_t c = 0; c < inputDim_; ++c)
                        row[c] = raw[c];
                }
            }
            scratch.labels.resize(group.size());

            auto started = Clock::now();
            epoch.engine.run(scratch.input, scratch.labels.data());
            auto finished = Clock::now();

            RouteStepStats step;
            step.model = m;
            step.version = epoch.version;
            step.rows = group.size();
            step.engineUs =
                std::chrono::duration<double, std::micro>(finished -
                                                          started)
                    .count();
            steps.push_back(step);

            for (std::size_t g = 0; g < group.size(); ++g) {
                std::size_t r = group[g];
                int label = scratch.labels[g];
                // Every hop writes the row's label; a later hop simply
                // overwrites, so the last executed model's verdict is
                // final without tracking terminal rows separately.
                final_labels[r] = label;
                if (traces)
                    (*traces)[r].hops.push_back(
                        {models_[m], epoch.version, label});
                std::size_t successor =
                    static_cast<std::size_t>(label) < nextModel_[m].size()
                        ? nextModel_[m][static_cast<std::size_t>(label)]
                        : kNoModel;
                if (successor != kNoModel &&
                    depth + 1 < config_.maxChainDepth)
                    scratch.next[successor].push_back(r);
            }
        }
        if (!any)
            break;
        std::swap(scratch.current, scratch.next);
        for (std::vector<std::size_t> &group : scratch.next)
            group.clear();
    }
}

}  // namespace homunculus::runtime
