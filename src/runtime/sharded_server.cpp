#include "runtime/sharded_server.hpp"

#include <algorithm>

#include "math/stats.hpp"
#include "net/packet.hpp"

namespace homunculus::runtime {

namespace {

/** splitmix64 finalizer: cheap, well-mixed 64-bit hash. Used both to
 *  place virtual nodes on the ring and to hash flow keys onto it, so
 *  correlated keys (sequential addresses, stride-allocated ports)
 *  still spread uniformly. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Percentiles from a merged sample set, zero when it is empty (the
 *  same "served nothing" convention Server::stop() uses). */
void
fillPercentiles(const std::vector<double> &samples, double &p50,
                double &p99)
{
    if (samples.empty())
        return;
    p50 = math::percentileNearestRank(samples, 0.50);
    p99 = math::percentileNearestRank(samples, 0.99);
}

/** The per-shard ServerConfig: identical knobs, disjoint ticket
 *  namespace (see kShardTicketShift). A caller-supplied metrics
 *  registry is dropped: shards must stay independently snapshotable
 *  (and sharing one registry would collide every shard onto the same
 *  instruments) — metricsSnapshot() is the cross-shard merge. */
ServerConfig
shardConfig(const ServerConfig &base, std::size_t shard)
{
    ServerConfig config = base;
    config.metrics = nullptr;
    std::uint64_t low = base.ticketBase != 0 ? base.ticketBase : 1;
    config.ticketBase =
        (static_cast<std::uint64_t>(shard) << kShardTicketShift) + low;
    return config;
}

}  // namespace

std::uint64_t
flowKey(const net::RawPacket &packet)
{
    std::uint64_t addrs =
        (static_cast<std::uint64_t>(packet.ipv4.srcAddr) << 32) |
        packet.ipv4.dstAddr;
    std::uint32_t ports = 0;
    if (packet.tcp)
        ports = (static_cast<std::uint32_t>(packet.tcp->srcPort) << 16) |
                packet.tcp->dstPort;
    else if (packet.udp)
        ports = (static_cast<std::uint32_t>(packet.udp->srcPort) << 16) |
                packet.udp->dstPort;
    return splitmix64(addrs ^
                      (static_cast<std::uint64_t>(ports) << 8) ^
                      packet.ipv4.protocol);
}

ShardedServer::ShardedServer(const InferenceEngine &engine,
                             ShardedServerConfig config,
                             Server::VerdictFn on_verdict,
                             std::optional<ml::StandardScaler> scaler)
{
    std::size_t shard_count = std::max<std::size_t>(config.shards, 1);
    servers_.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s)
        servers_.push_back(std::make_unique<Server>(
            engine, shardConfig(config.server, s), on_verdict, scaler));
    buildRing(shard_count, config.virtualNodes);
    initFrontDoor(config.server);
}

ShardedServer::ShardedServer(std::shared_ptr<ModelRegistry> registry,
                             RouteConfig route,
                             ShardedServerConfig config,
                             Server::VerdictFn on_verdict,
                             Server::RouteTraceFn on_trace)
{
    std::size_t shard_count = std::max<std::size_t>(config.shards, 1);
    servers_.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s)
        servers_.push_back(std::make_unique<Server>(
            registry, route, shardConfig(config.server, s), on_verdict,
            on_trace));
    buildRing(shard_count, config.virtualNodes);
    initFrontDoor(config.server);
}

void
ShardedServer::initFrontDoor(const ServerConfig &base)
{
    frontMalformed_ = &frontMetrics_.counter("server.malformed_frames");
    frontCallbackErrors_ =
        &frontMetrics_.counter("server.callback_errors");
    std::uint64_t low = base.ticketBase != 0 ? base.ticketBase : 1;
    frontNextId_.store(
        (static_cast<std::uint64_t>(servers_.size())
         << kShardTicketShift) +
        low);
    onFailure_ = base.onFailure;
}

ShardedServer::~ShardedServer()
{
    stop();
}

void
ShardedServer::buildRing(std::size_t shard_count,
                         std::size_t virtual_nodes)
{
    std::size_t points = std::max<std::size_t>(virtual_nodes, 1);
    ring_.reserve(shard_count * points);
    for (std::size_t s = 0; s < shard_count; ++s)
        for (std::size_t v = 0; v < points; ++v) {
            RingPoint point;
            // (shard, vnode) -> a stable pseudo-random ring position;
            // shard+1 keeps shard 0's nodes off the v-only pattern.
            point.hash = splitmix64(
                (static_cast<std::uint64_t>(s + 1) << 32) ^ v);
            point.shard = s;
            ring_.push_back(point);
        }
    std::sort(ring_.begin(), ring_.end());
}

std::size_t
ShardedServer::shardFor(std::uint64_t flow_key) const
{
    RingPoint probe;
    probe.hash = splitmix64(flow_key);
    auto it = std::upper_bound(ring_.begin(), ring_.end(), probe);
    if (it == ring_.end())
        it = ring_.begin();  // wrap: the ring is a circle.
    return it->shard;
}

SubmitResult
ShardedServer::submit(std::uint64_t flow_key,
                      std::vector<double> features, std::size_t lane)
{
    return servers_[shardFor(flow_key)]->submit(std::move(features),
                                                lane);
}

SubmitResult
ShardedServer::submitPacket(const net::RawPacket &packet,
                            std::size_t lane)
{
    return servers_[shardFor(flowKey(packet))]->submitPacket(packet,
                                                             lane);
}

SubmitResult
ShardedServer::submitFrame(const std::vector<std::uint8_t> &frame,
                           std::size_t lane)
{
    // Parse once at the front door: the flow key needs the headers
    // anyway, and the owning shard then skips re-parsing.
    auto packet = net::parse(frame);
    if (!packet) {
        // Per-ticket malformed reporting, same contract as
        // Server::submitFrame — but from the front door's own ticket
        // namespace, since no shard ever saw the frame.
        std::uint64_t ticket = frontNextId_.fetch_add(1);
        frontMalformed_->add();
        if (onFailure_) {
            try {
                onFailure_(ticket, lane, "malformed frame");
            } catch (...) {
                frontCallbackErrors_->add();
            }
        }
        SubmitResult result;
        result.status = SubmitStatus::kMalformed;
        result.ticket = ticket;
        return result;
    }
    return submitPacket(*packet, lane);
}

telemetry::MetricsSnapshot
ShardedServer::metricsSnapshot() const
{
    telemetry::MetricsSnapshot merged =
        frontMetrics_.snapshot().withLabel("shard", "front");
    for (std::size_t s = 0; s < servers_.size(); ++s)
        merged.merge(servers_[s]->metrics().snapshot().withLabel(
            "shard", std::to_string(s)));
    return merged;
}

std::size_t
ShardedServer::depth() const
{
    std::size_t total = 0;
    for (const auto &server : servers_)
        total += server->depth();
    return total;
}

const std::vector<ServerStats> &
ShardedServer::shardStats() const
{
    return shardStats_;
}

ServerStats
ShardedServer::stop()
{
    std::lock_guard<std::mutex> stop_lock(stopMutex_);
    if (stopped_)
        return mergedStats_;

    shardStats_.clear();
    shardStats_.reserve(servers_.size());
    for (auto &server : servers_)
        shardStats_.push_back(server->stop());

    ServerStats merged;
    for (const ServerStats &s : shardStats_) {
        merged.queue += s.queue;
        merged.rowsServed += s.rowsServed;
        merged.batches += s.batches;
        merged.malformedFrames += s.malformedFrames;
        merged.failedBatches += s.failedBatches;
        merged.failedRows += s.failedRows;
        merged.retriedBatches += s.retriedBatches;
        merged.callbackErrors += s.callbackErrors;
        merged.deadlineTruncated += s.deadlineTruncated;
        merged.fallbackRows += s.fallbackRows;
        // Shards ran concurrently; the run's wall time is the longest
        // shard's, not the sum.
        merged.wallSeconds = std::max(merged.wallSeconds, s.wallSeconds);
        merged.batchLatencySamplesUs.insert(
            merged.batchLatencySamplesUs.end(),
            s.batchLatencySamplesUs.begin(),
            s.batchLatencySamplesUs.end());
        merged.requestLatencySamplesUs.insert(
            merged.requestLatencySamplesUs.end(),
            s.requestLatencySamplesUs.begin(),
            s.requestLatencySamplesUs.end());
    }
    merged.malformedFrames +=
        static_cast<std::size_t>(frontMalformed_->value());
    merged.callbackErrors +=
        static_cast<std::size_t>(frontCallbackErrors_->value());
    merged.meanBatchRows =
        merged.batches > 0 ? static_cast<double>(merged.rowsServed) /
                                 static_cast<double>(merged.batches)
                           : 0.0;
    fillPercentiles(merged.batchLatencySamplesUs,
                    merged.p50BatchLatencyUs, merged.p99BatchLatencyUs);
    fillPercentiles(merged.requestLatencySamplesUs,
                    merged.p50RequestLatencyUs,
                    merged.p99RequestLatencyUs);

    // Lane slices: every shard has the same lane layout (one shared
    // ServerConfig), so merge index-wise.
    std::size_t lane_count =
        shardStats_.empty() ? 0 : shardStats_[0].lanes.size();
    merged.lanes.resize(lane_count);
    for (std::size_t lane = 0; lane < lane_count; ++lane) {
        LaneStats &out = merged.lanes[lane];
        for (const ServerStats &s : shardStats_) {
            if (lane >= s.lanes.size())
                continue;
            const LaneStats &in = s.lanes[lane];
            out.queue += in.queue;
            out.rowsServed += in.rowsServed;
            out.rowsFailed += in.rowsFailed;
            out.batches += in.batches;
            out.requestLatencySamplesUs.insert(
                out.requestLatencySamplesUs.end(),
                in.requestLatencySamplesUs.begin(),
                in.requestLatencySamplesUs.end());
        }
        fillPercentiles(out.requestLatencySamplesUs,
                        out.p50RequestLatencyUs,
                        out.p99RequestLatencyUs);
    }

    // Model slices (routed form): same route on every shard, so the
    // model list is index-aligned across shards too.
    std::size_t model_count =
        shardStats_.empty() ? 0 : shardStats_[0].models.size();
    merged.models.resize(model_count);
    for (std::size_t m = 0; m < model_count; ++m) {
        ModelStats &out = merged.models[m];
        out.name = shardStats_[0].models[m].name;
        out.activeVersion = shardStats_[0].models[m].activeVersion;
        for (const ServerStats &s : shardStats_) {
            if (m >= s.models.size())
                continue;
            const ModelStats &in = s.models[m];
            out.rowsServed += in.rowsServed;
            out.batches += in.batches;
            out.breakerOpens += in.breakerOpens;
            out.breakerFallbackRows += in.breakerFallbackRows;
            // "closed" everywhere merges to closed; any tripped shard
            // surfaces its state (first one wins — enough to flag it).
            if (out.breakerState == "closed" &&
                in.breakerState != "closed")
                out.breakerState = in.breakerState;
            out.stepLatencySamplesUs.insert(
                out.stepLatencySamplesUs.end(),
                in.stepLatencySamplesUs.begin(),
                in.stepLatencySamplesUs.end());
        }
        fillPercentiles(out.stepLatencySamplesUs, out.p50StepLatencyUs,
                        out.p99StepLatencyUs);
    }

    mergedStats_ = merged;
    stopped_ = true;
    return mergedStats_;
}

}  // namespace homunculus::runtime
