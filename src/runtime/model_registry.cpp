#include "runtime/model_registry.hpp"

#include <stdexcept>

#include "common/string_util.hpp"
#include "ir/serialize.hpp"
#include "runtime/fault_injector.hpp"

namespace homunculus::runtime {

ModelRegistry::ModelRegistry(EngineOptions engine_options,
                             telemetry::MetricRegistry *metrics)
    : engineOptions_(engine_options),
      metrics_(metrics != nullptr ? metrics
                                  : &telemetry::MetricRegistry::global())
{
}

void
ModelRegistry::count(const char *event, const std::string &name) const
{
    // Control-plane events only (loads, swaps, pins, unloads) — the
    // resolve-under-mutex cost is fine off the per-row hot path.
    metrics_->counter(event, {{"model", name}}).add();
}

std::uint64_t
ModelRegistry::load(const std::string &name, const ir::ModelIr &model,
                    bool activate_if_first,
                    const std::optional<EngineOptions> &engine_options)
{
    if (name.empty())
        throw std::runtime_error("ModelRegistry: model name is empty");
    // Compile outside the lock: plan compilation is the expensive part
    // and must not stall concurrent active() lookups on the serving
    // path.
    InferenceEngine engine = InferenceEngine::fromModel(
        model, engine_options.value_or(engineOptions_));
    std::optional<ml::StandardScaler> scaler;
    if (model.hasScaler())
        scaler = ml::StandardScaler::fromMoments(model.scalerMeans,
                                                 model.scalerStds);

    std::lock_guard<std::mutex> lock(mutex_);
    Entry &entry = entries_[name];
    if (entry.nextVersion == 1) {
        entry.inputDim = model.inputDim;
        entry.numClasses = model.numClasses;
    } else if (model.inputDim != entry.inputDim ||
               model.numClasses != entry.numClasses) {
        throw std::runtime_error(common::format(
            "ModelRegistry: '%s' v%llu is not a drop-in replacement "
            "(%zu features / %d classes, expected %zu / %d)",
            name.c_str(),
            static_cast<unsigned long long>(entry.nextVersion),
            model.inputDim, model.numClasses, entry.inputDim,
            entry.numClasses));
    }
    std::uint64_t version = entry.nextVersion++;
    entry.loaded[version] = std::make_shared<const ModelEpoch>(
        name, version, std::move(engine), std::move(scaler));
    if (entry.active == 0 && activate_if_first)
        entry.active = version;
    count("registry.loads", name);
    return version;
}

std::uint64_t
ModelRegistry::loadFile(const std::string &name, const std::string &path,
                        bool activate_if_first,
                        const std::optional<EngineOptions> &engine_options)
{
    // The artifact-read fault site models a torn/unreadable file: it
    // throws before any parse work, like a disk error would.
    faults::FaultInjector::global().maybe(faults::kSiteArtifactRead);
    return load(name, ir::loadModel(path), activate_if_first,
                engine_options);
}

const ModelRegistry::Entry &
ModelRegistry::entryFor(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        throw std::out_of_range("ModelRegistry: unknown model '" + name +
                                "'");
    return it->second;
}

std::uint64_t
ModelRegistry::swap(const std::string &name, std::uint64_t version)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end())
        throw std::out_of_range("ModelRegistry: unknown model '" + name +
                                "'");
    Entry &entry = it->second;
    if (entry.loaded.find(version) == entry.loaded.end())
        throw std::out_of_range(common::format(
            "ModelRegistry: '%s' has no loaded v%llu", name.c_str(),
            static_cast<unsigned long long>(version)));
    std::uint64_t previous = entry.active;
    // The flip itself: one store under the mutex. Batches that pinned
    // the previous epoch keep their shared_ptr; nothing they hold is
    // touched.
    entry.active = version;
    count("registry.swaps", name);
    return previous;
}

std::shared_ptr<const ModelEpoch>
ModelRegistry::active(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Entry &entry = entryFor(name);
    if (entry.active == 0)
        throw std::out_of_range("ModelRegistry: model '" + name +
                                "' has no active version");
    count("registry.pins", name);
    return entry.loaded.at(entry.active);
}

std::shared_ptr<const ModelEpoch>
ModelRegistry::version(const std::string &name,
                       std::uint64_t version) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end())
        return nullptr;
    auto vit = it->second.loaded.find(version);
    return vit != it->second.loaded.end() ? vit->second : nullptr;
}

std::uint64_t
ModelRegistry::activeVersion(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entryFor(name).active;
}

bool
ModelRegistry::contains(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.find(name) != entries_.end();
}

std::vector<std::string>
ModelRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_) {
        (void)entry;
        out.push_back(name);
    }
    return out;
}

std::vector<std::uint64_t>
ModelRegistry::versions(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::uint64_t> out;
    auto it = entries_.find(name);
    if (it == entries_.end())
        return out;
    for (const auto &[version, epoch] : it->second.loaded) {
        (void)epoch;
        out.push_back(version);
    }
    return out;
}

std::size_t
ModelRegistry::unloadIdle(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end())
        return 0;
    Entry &entry = it->second;
    std::size_t removed = 0;
    for (auto vit = entry.loaded.begin(); vit != entry.loaded.end();) {
        // use_count == 1 means the registry is the only holder: no
        // batch has this epoch pinned right now, and none can pin it
        // between the check and the erase because pinning requires this
        // mutex.
        if (vit->first != entry.active && vit->second.use_count() == 1) {
            vit = entry.loaded.erase(vit);
            count("registry.unloads", name);
            ++removed;
        } else {
            ++vit;
        }
    }
    return removed;
}

bool
ModelRegistry::unload(const std::string &name, std::uint64_t version)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end())
        return false;
    Entry &entry = it->second;
    if (version == entry.active && entry.active != 0)
        throw std::invalid_argument(common::format(
            "ModelRegistry: cannot unload the active v%llu of '%s' — "
            "swap first",
            static_cast<unsigned long long>(version), name.c_str()));
    bool erased = entry.loaded.erase(version) > 0;
    if (erased)
        count("registry.unloads", name);
    return erased;
}

}  // namespace homunculus::runtime
