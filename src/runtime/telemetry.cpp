/**
 * @file
 * Metric registry, reservoir histogram, span ring, and the stats-JSON
 * exporter. See telemetry.hpp for the design contract.
 */
#include "runtime/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "math/stats.hpp"

namespace homunculus::runtime::telemetry {

namespace {

/** Stable sort order for label sets: by key, then value. */
void
canonicalize(Labels &labels)
{
    std::sort(labels.begin(), labels.end(),
              [](const Label &a, const Label &b) {
                  return a.key != b.key ? a.key < b.key : a.value < b.value;
              });
}

/** Registry key: name{k=v,k=v} over the sorted label set. */
std::string
canonicalKey(const std::string &name, const Labels &sorted)
{
    std::string key = name;
    key += '{';
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (i != 0)
            key += ',';
        key += sorted[i].key;
        key += '=';
        key += sorted[i].value;
    }
    key += '}';
    return key;
}

bool
sameLabels(const Labels &a, const Labels &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].key != b[i].key || a[i].value != b[i].value)
            return false;
    return true;
}

/** FNV-1a 64 over the canonical key: deterministic histogram seeds. */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

}  // namespace

// --------------------------------------------------------------- Histogram

void
Histogram::observe(double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++seen_;
    if (samples_.size() < kHistogramReservoirSize) {
        samples_.push_back(value);
        return;
    }
    // Algorithm R: replace a uniform slot in [0, seen) if it lands
    // inside the reservoir — keeps the sample uniform over the stream.
    auto slot = static_cast<std::uint64_t>(
        rng_.uniformInt(0, static_cast<std::int64_t>(seen_) - 1));
    if (slot < kHistogramReservoirSize)
        samples_[static_cast<std::size_t>(slot)] = value;
}

std::uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return seen_;
}

std::vector<double>
Histogram::samples() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_;
}

double
Histogram::percentile(double p) const
{
    std::vector<double> copy = samples();
    if (copy.empty())
        return 0.0;
    // math::percentileNearestRank takes a fraction in [0, 1]; the
    // instrument API speaks percentiles (50.0, 99.0) like the exports.
    return math::percentileNearestRank(std::move(copy), p / 100.0);
}

// --------------------------------------------------------- MetricsSnapshot

double
MetricsSnapshot::Entry::percentile(double p) const
{
    if (samples.empty())
        return 0.0;
    return math::percentileNearestRank(samples, p / 100.0);
}

MetricsSnapshot &
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    for (const Entry &theirs : other.entries) {
        Entry *mine = nullptr;
        for (Entry &candidate : entries) {
            if (candidate.kind == theirs.kind &&
                candidate.name == theirs.name &&
                sameLabels(candidate.labels, theirs.labels)) {
                mine = &candidate;
                break;
            }
        }
        if (mine == nullptr) {
            entries.push_back(theirs);
            continue;
        }
        mine->count += theirs.count;
        mine->gauge += theirs.gauge;
        mine->samples.insert(mine->samples.end(), theirs.samples.begin(),
                             theirs.samples.end());
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return canonicalKey(a.name, a.labels) <
                         canonicalKey(b.name, b.labels);
              });
    return *this;
}

MetricsSnapshot &
MetricsSnapshot::withLabel(const std::string &key, const std::string &value)
{
    for (Entry &entry : entries) {
        entry.labels.push_back({key, value});
        canonicalize(entry.labels);
    }
    return *this;
}

const MetricsSnapshot::Entry *
MetricsSnapshot::find(const std::string &name, const Labels &labels) const
{
    Labels sorted = labels;
    canonicalize(sorted);
    for (const Entry &entry : entries)
        if (entry.name == name && sameLabels(entry.labels, sorted))
            return &entry;
    return nullptr;
}

std::uint64_t
MetricsSnapshot::counterValue(const std::string &name,
                              const Labels &labels) const
{
    const Entry *entry = find(name, labels);
    return entry != nullptr ? entry->count : 0;
}

std::uint64_t
MetricsSnapshot::sumCounters(const std::string &name) const
{
    std::uint64_t total = 0;
    for (const Entry &entry : entries)
        if (entry.name == name)
            total += entry.count;
    return total;
}

// ---------------------------------------------------------- MetricRegistry

MetricRegistry::Instrument &
MetricRegistry::resolve(const std::string &name, const Labels &labels,
                        MetricKind kind)
{
    Labels sorted = labels;
    canonicalize(sorted);
    std::string key = canonicalKey(name, sorted);

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = instruments_.find(key);
    if (it != instruments_.end()) {
        if (it->second.kind != kind)
            throw std::logic_error("telemetry: instrument '" + key +
                                   "' re-registered with a different kind");
        return it->second;
    }
    Instrument instrument;
    instrument.name = name;
    instrument.labels = std::move(sorted);
    instrument.kind = kind;
    switch (kind) {
        case MetricKind::kCounter:
            instrument.counter = std::make_unique<Counter>();
            break;
        case MetricKind::kGauge:
            instrument.gauge = std::make_unique<Gauge>();
            break;
        case MetricKind::kHistogram:
            instrument.histogram = std::make_unique<Histogram>(fnv1a(key));
            break;
    }
    return instruments_.emplace(std::move(key), std::move(instrument))
        .first->second;
}

Counter &
MetricRegistry::counter(const std::string &name, const Labels &labels)
{
    return *resolve(name, labels, MetricKind::kCounter).counter;
}

Gauge &
MetricRegistry::gauge(const std::string &name, const Labels &labels)
{
    return *resolve(name, labels, MetricKind::kGauge).gauge;
}

Histogram &
MetricRegistry::histogram(const std::string &name, const Labels &labels)
{
    return *resolve(name, labels, MetricKind::kHistogram).histogram;
}

MetricsSnapshot
MetricRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    snap.entries.reserve(instruments_.size());
    for (const auto &[key, instrument] : instruments_) {
        (void)key;  // map order == canonical-key order already
        MetricsSnapshot::Entry entry;
        entry.name = instrument.name;
        entry.labels = instrument.labels;
        entry.kind = instrument.kind;
        switch (instrument.kind) {
            case MetricKind::kCounter:
                entry.count = instrument.counter->value();
                break;
            case MetricKind::kGauge:
                entry.gauge = instrument.gauge->value();
                break;
            case MetricKind::kHistogram:
                entry.count = instrument.histogram->count();
                entry.samples = instrument.histogram->samples();
                break;
        }
        snap.entries.push_back(std::move(entry));
    }
    return snap;
}

MetricRegistry &
MetricRegistry::global()
{
    static MetricRegistry instance;
    return instance;
}

// --------------------------------------------------------------- TraceSink

const char *
spanOutcomeName(SpanOutcome outcome)
{
    switch (outcome) {
        case SpanOutcome::kServed:
            return "served";
        case SpanOutcome::kFailed:
            return "failed";
        case SpanOutcome::kDropped:
            return "dropped";
    }
    return "unknown";
}

TraceSink::TraceSink(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)),
      epoch_(std::chrono::steady_clock::now())
{
}

std::uint16_t
TraceSink::internModel(const std::string &name)
{
    std::lock_guard<std::mutex> lock(namesMutex_);
    for (std::size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return static_cast<std::uint16_t>(i);
    names_.push_back(name);
    return static_cast<std::uint16_t>(names_.size() - 1);
}

const std::string &
TraceSink::modelName(std::uint16_t id) const
{
    static const std::string kUnknown = "?";
    std::lock_guard<std::mutex> lock(namesMutex_);
    if (id >= names_.size())
        return kUnknown;
    return names_[id];
}

void
TraceSink::record(const RequestSpan &span)
{
    std::uint64_t slot = head_.fetch_add(1, std::memory_order_relaxed);
    ring_[static_cast<std::size_t>(slot % ring_.size())] = span;
}

std::vector<RequestSpan>
TraceSink::snapshot() const
{
    std::uint64_t total = head_.load(std::memory_order_acquire);
    std::size_t retained =
        static_cast<std::size_t>(std::min<std::uint64_t>(total, ring_.size()));
    std::vector<RequestSpan> spans;
    spans.reserve(retained);
    // Oldest retained span sits at head - retained (mod capacity).
    for (std::size_t i = 0; i < retained; ++i) {
        std::uint64_t index = total - retained + i;
        spans.push_back(ring_[static_cast<std::size_t>(index % ring_.size())]);
    }
    return spans;
}

// ------------------------------------------------------------ JSON export

namespace {

/** Minimal JSON string escaping (names here are plain identifiers). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    return out;
}

std::string
fmtDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
}

void
writeLabels(std::ostream &out, const Labels &labels)
{
    out << "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i != 0)
            out << ", ";
        out << '"' << jsonEscape(labels[i].key) << "\": \""
            << jsonEscape(labels[i].value) << '"';
    }
    out << "}";
}

}  // namespace

void
writeServeStatsJson(std::ostream &out, const MetricsSnapshot &snapshot,
                    const TraceSink *spans)
{
    out << "{\n";
    out << "  \"schema\": \"" << kServeStatsSchema << "\",\n";
    out << "  \"metrics\": [\n";
    for (std::size_t i = 0; i < snapshot.entries.size(); ++i) {
        const MetricsSnapshot::Entry &entry = snapshot.entries[i];
        out << "    {\"name\": \"" << jsonEscape(entry.name)
            << "\", \"labels\": ";
        writeLabels(out, entry.labels);
        switch (entry.kind) {
            case MetricKind::kCounter:
                out << ", \"kind\": \"counter\", \"value\": " << entry.count;
                break;
            case MetricKind::kGauge:
                out << ", \"kind\": \"gauge\", \"value\": " << entry.gauge;
                break;
            case MetricKind::kHistogram:
                out << ", \"kind\": \"histogram\", \"count\": " << entry.count
                    << ", \"p50\": " << fmtDouble(entry.percentile(50.0))
                    << ", \"p99\": " << fmtDouble(entry.percentile(99.0));
                break;
        }
        out << "}" << (i + 1 < snapshot.entries.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    std::vector<RequestSpan> retained;
    std::uint64_t recorded = 0;
    if (spans != nullptr) {
        retained = spans->snapshot();
        recorded = spans->recorded();
    }
    out << "  \"spans_recorded\": " << recorded << ",\n";
    out << "  \"spans\": [\n";
    for (std::size_t i = 0; i < retained.size(); ++i) {
        const RequestSpan &span = retained[i];
        out << "    {\"ticket\": " << span.ticket
            << ", \"lane\": " << span.lane
            << ", \"enqueued_at_us\": " << span.enqueuedAtUs
            << ", \"flushed_at_us\": " << span.flushedAtUs << ", \"hops\": [";
        for (std::uint8_t h = 0; h < span.hopCount; ++h) {
            if (h != 0)
                out << ", ";
            out << '"' << jsonEscape(spans->modelName(span.hops[h])) << '"';
        }
        out << "], \"retries\": " << static_cast<unsigned>(span.retries)
            << ", \"outcome\": \"" << spanOutcomeName(span.outcome)
            << "\", \"latency_us\": " << fmtDouble(span.latencyUs) << "}"
            << (i + 1 < retained.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

}  // namespace homunculus::runtime::telemetry
