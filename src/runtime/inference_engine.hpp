/**
 * @file
 * InferenceEngine: multi-core execution of one compiled ExecutablePlan.
 *
 * PR 2 made batch inference compile-then-execute; this engine makes it
 * scale across cores, the same data-parallel row sharding MapReduce-style
 * operator frameworks (ASAP) use. A batch is split into contiguous row
 * shards, fanned out over common::parallelForChunks, and each worker
 * executes the shared immutable plan with its own Scratch arena, writing
 * labels directly into that shard's slice of the output vector — so the
 * stitched result preserves row order and is bit-identical to the
 * single-threaded path at any jobs width (every path replays the
 * reference interpreter's exact saturating-arithmetic sequence).
 *
 * The engine serves two masters with one knob:
 *  - deployment: the trace-replay serving harness (runtime::StreamHarness)
 *    and homc --replay shard micro-batches across cores;
 *  - compilation: candidate scoring inside the Bayesian search
 *    (Platform::evaluate with EvalOptions::jobs) shards large test
 *    partitions, shrinking the search's innermost loop.
 *
 * Small batches stay inline on the calling thread (options.minRowsToShard)
 * — pool handoff under a few hundred rows costs more than it saves.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "ir/exec_plan.hpp"
#include "runtime/telemetry.hpp"

namespace homunculus::runtime {

class Executor;

/** Execution knobs of an engine. */
struct EngineOptions
{
    /** Worker threads for batch sharding (0 = one per hardware thread,
     *  1 = run inline on the caller's thread). */
    std::size_t jobs = 1;
    /**
     * Batches smaller than this run inline even when jobs > 1. The
     * 2048 default dated from per-dispatch thread spawn (~50 us each);
     * with the persistent Executor a dispatch is a ~1-2 us queue
     * handoff, and re-measuring on the bench MLP found the crossover
     * where sharding starts winning near a few hundred rows — 512
     * keeps a safety margin over the crossover for cheaper plans
     * (trees) while letting mid-size batches parallelize.
     */
    std::size_t minRowsToShard = 512;
    /** Upper bound on rows per shard (smaller shards balance better;
     *  the engine also never makes fewer than ~4 shards per worker). */
    std::size_t maxShardRows = 4096;
    /** Worker pool to shard on (nullptr = the process-default
     *  Executor). Labels never depend on the pool. */
    Executor *executor = nullptr;
    /**
     * Pin this engine's plan to the scalar kernel table regardless of
     * the process-wide KernelDispatch resolution (CPU probe /
     * HOMUNCULUS_KERNELS / homc --kernel). Labels never change —
     * every kernel target is bit-identical by contract — so this is a
     * test/bench knob: differential suites and the micro-kernel bench
     * run a scalar-pinned engine next to a vectorized one in one
     * process.
     */
    bool forceScalarKernels = false;
};

/** A compiled plan plus the parallel execution policy for it. */
class InferenceEngine
{
  public:
    explicit InferenceEngine(ir::ExecutablePlan plan,
                             EngineOptions options = {});

    /** Compile @p model and wrap the plan (validates the model). */
    static InferenceEngine fromModel(const ir::ModelIr &model,
                                     EngineOptions options = {});

    /** Batched inference; one label per row, in row order. */
    std::vector<int> run(const math::Matrix &x) const;

    /** Batched inference over a pre-quantized matrix (format must match
     *  the plan's; skips per-candidate re-quantization). */
    std::vector<int> run(const ir::QuantizedMatrix &x) const;

    /** As run(), writing into caller storage of x.rows() labels. */
    void run(const math::Matrix &x, int *labels) const;
    void run(const ir::QuantizedMatrix &x, int *labels) const;

    const ir::ExecutablePlan &plan() const { return plan_; }
    const EngineOptions &options() const { return options_; }

    /** The resolved worker count (options.jobs with 0 expanded). */
    std::size_t jobs() const;

    /** Rows per shard the engine would use for an @p rows batch. */
    std::size_t shardRowsFor(std::size_t rows) const;

  private:
    ir::ExecutablePlan plan_;
    EngineOptions options_;
    /** "engine.rows"/"engine.batches" {target=scalar|avx2|neon} in the
     *  process-global telemetry registry, resolved once at
     *  construction (stable pointers; engine copies share them). */
    telemetry::Counter *rowsCounter_ = nullptr;
    telemetry::Counter *batchesCounter_ = nullptr;
};

}  // namespace homunculus::runtime
