#include "runtime/server.hpp"

#include <stdexcept>

#include "common/string_util.hpp"
#include "math/stats.hpp"

namespace homunculus::runtime {

namespace {

using Clock = std::chrono::steady_clock;

/** Reservoir capacity: exact percentiles below this many samples,
 *  uniform estimates beyond — and bounded memory either way. */
constexpr std::size_t kLatencyReservoirSize = 65536;

}  // namespace

void
Server::LatencyReservoir::add(double value, common::Rng &rng)
{
    ++seen;
    if (samples.size() < kLatencyReservoirSize) {
        samples.push_back(value);
        return;
    }
    // Algorithm R: replace a uniformly random slot with probability
    // capacity/seen, keeping every observation equally likely to be
    // retained.
    auto slot = static_cast<std::uint64_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(seen) - 1));
    if (slot < kLatencyReservoirSize)
        samples[static_cast<std::size_t>(slot)] = value;
}

Server::Server(InferenceEngine engine, ServerConfig config,
               VerdictFn on_verdict,
               std::optional<ml::StandardScaler> scaler)
    : engine_(std::move(engine)), config_(config),
      onVerdict_(std::move(on_verdict)), scaler_(std::move(scaler)),
      queue_(config.queue), startedAt_(Clock::now())
{
    if (scaler_ && !scaler_->fitted())
        throw std::runtime_error("Server: scaler is not fitted");
    if (scaler_ && scaler_->means().size() != engine_.plan().inputDim())
        throw std::runtime_error("Server: scaler width does not match "
                                 "the model");
    batcher_ = std::thread([this] { serveLoop(); });
}

Server::~Server()
{
    stop();
}

std::optional<std::uint64_t>
Server::submit(std::vector<double> features)
{
    if (features.size() != engine_.plan().inputDim())
        throw std::runtime_error(common::format(
            "Server: row has %zu features, model expects %zu",
            features.size(), engine_.plan().inputDim()));
    if (scaler_) {
        const std::vector<double> &means = scaler_->means();
        const std::vector<double> &stds = scaler_->stddevs();
        for (std::size_t c = 0; c < features.size(); ++c)
            features[c] = (features[c] - means[c]) / stds[c];
    }
    Request request;
    std::uint64_t id = nextId_.fetch_add(1);
    request.id = id;
    request.features = std::move(features);
    if (!queue_.push(std::move(request)))
        return std::nullopt;
    return id;
}

std::optional<std::uint64_t>
Server::submitPacket(const net::RawPacket &packet)
{
    if (engine_.plan().inputDim() != net::kNumTcFeatures)
        throw std::runtime_error(common::format(
            "Server: model expects %zu features but the packet "
            "extractor emits %zu",
            engine_.plan().inputDim(), net::kNumTcFeatures));
    return submit(extractor_.extract(packet));
}

std::optional<std::uint64_t>
Server::submitFrame(const std::vector<std::uint8_t> &frame)
{
    auto packet = net::parse(frame);
    if (!packet) {
        malformed_.fetch_add(1);
        return std::nullopt;
    }
    return submitPacket(*packet);
}

void
Server::serveLoop()
{
    const std::size_t dim = engine_.plan().inputDim();
    // One buffer sized for the largest possible batch; deadline flushes
    // release continuously varying batch sizes, and resizeRows keeps
    // the capacity, so the hot loop never reallocates after the first
    // full batch.
    math::Matrix features(config_.queue.maxBatch, dim);
    std::vector<int> labels;
    labels.reserve(config_.queue.maxBatch);

    while (std::optional<RequestBatch> batch = queue_.pop()) {
        std::vector<Request> &requests = batch->requests;
        const std::size_t rows = requests.size();
        features.resizeRows(rows);
        for (std::size_t r = 0; r < rows; ++r) {
            double *row = features.rowPtr(r);
            for (std::size_t c = 0; c < dim; ++c)
                row[c] = requests[r].features[c];
        }
        labels.resize(rows);

        auto started = Clock::now();
        engine_.run(features, labels.data());
        auto finished = Clock::now();
        double batch_us =
            std::chrono::duration<double, std::micro>(finished - started)
                .count();

        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++batches_;
            rowsServed_ += rows;
            batchLatenciesUs_.add(batch_us, reservoirRng_);
            for (const Request &request : requests)
                requestLatenciesUs_.add(
                    std::chrono::duration<double, std::micro>(
                        finished - request.enqueuedAt)
                        .count(),
                    reservoirRng_);
        }
        if (onVerdict_)
            for (std::size_t r = 0; r < rows; ++r)
                onVerdict_(requests[r], labels[r]);
    }
}

ServerStats
Server::stop()
{
    std::lock_guard<std::mutex> stop_lock(stopMutex_);
    if (stopped_)
        return finalStats_;

    queue_.close();
    if (batcher_.joinable())
        batcher_.join();

    ServerStats stats;
    stats.queue = queue_.counters();
    stats.malformedFrames =
        static_cast<std::size_t>(malformed_.load());
    stats.wallSeconds =
        std::chrono::duration<double>(Clock::now() - startedAt_).count();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats.rowsServed = rowsServed_;
        stats.batches = batches_;
        stats.meanBatchRows =
            batches_ > 0 ? static_cast<double>(rowsServed_) /
                               static_cast<double>(batches_)
                         : 0.0;
        stats.p50BatchLatencyUs =
            math::percentileNearestRank(batchLatenciesUs_.samples, 0.50);
        stats.p99BatchLatencyUs =
            math::percentileNearestRank(batchLatenciesUs_.samples, 0.99);
        stats.p50RequestLatencyUs = math::percentileNearestRank(
            requestLatenciesUs_.samples, 0.50);
        stats.p99RequestLatencyUs = math::percentileNearestRank(
            requestLatenciesUs_.samples, 0.99);
    }
    finalStats_ = stats;
    stopped_ = true;
    return finalStats_;
}

}  // namespace homunculus::runtime
