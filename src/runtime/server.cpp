#include "runtime/server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/string_util.hpp"
#include "math/stats.hpp"

namespace homunculus::runtime {

namespace {

using Clock = std::chrono::steady_clock;

/** Reservoir capacity: exact percentiles below this many samples,
 *  uniform estimates beyond — and bounded memory either way. */
constexpr std::size_t kLatencyReservoirSize = 65536;

/** Translate a queue admission outcome into the submit result. */
SubmitStatus
submitStatusFor(Admission admission)
{
    switch (admission) {
      case Admission::kAdmitted: return SubmitStatus::kAdmitted;
      case Admission::kShed: return SubmitStatus::kShed;
      case Admission::kTimedOut: return SubmitStatus::kTimedOut;
      case Admission::kRejectedClosed:
        return SubmitStatus::kRejectedClosed;
    }
    return SubmitStatus::kShed;
}

}  // namespace

QueueConfig
Server::makeQueueConfig()
{
    QueueConfig queue;
    queue.lanes.push_back(config_.queue);
    queue.lanes.insert(queue.lanes.end(), config_.extraLanes.begin(),
                       config_.extraLanes.end());
    queue.backpressure = config_.backpressure;
    queue.blockTimeoutUs = config_.blockTimeoutUs;
    queue.fairnessAgingUs = config_.fairnessAgingUs;
    if (config_.onDrop) {
        // Guard the user's drop sink like every other callback: it runs
        // on the batcher thread inside pop(), where a throw used to be
        // thread death.
        DropFn user = config_.onDrop;
        queue.onDrop = [this, user](std::uint64_t ticket,
                                    std::size_t lane,
                                    std::uint64_t waited_us) {
            try {
                user(ticket, lane, waited_us);
            } catch (...) {
                callbackErrors_.fetch_add(1);
            }
        };
    }
    return queue;
}

void
Server::LatencyReservoir::add(double value, common::Rng &rng)
{
    ++seen;
    if (samples.size() < kLatencyReservoirSize) {
        samples.push_back(value);
        return;
    }
    // Algorithm R: replace a uniformly random slot with probability
    // capacity/seen, keeping every observation equally likely to be
    // retained.
    auto slot = static_cast<std::uint64_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(seen) - 1));
    if (slot < kLatencyReservoirSize)
        samples[static_cast<std::size_t>(slot)] = value;
}

Server::Server(InferenceEngine engine, ServerConfig config,
               VerdictFn on_verdict,
               std::optional<ml::StandardScaler> scaler)
    : engine_(std::move(engine)), config_(std::move(config)),
      onVerdict_(std::move(on_verdict)), scaler_(std::move(scaler)),
      injector_(config_.injector ? config_.injector
                                 : &faults::FaultInjector::global()),
      queue_(makeQueueConfig()), startedAt_(Clock::now())
{
    nextId_.store(config_.ticketBase != 0 ? config_.ticketBase : 1);
    inputDim_ = engine_->plan().inputDim();
    if (scaler_ && !scaler_->fitted())
        throw std::runtime_error("Server: scaler is not fitted");
    if (scaler_ && scaler_->means().size() != inputDim_)
        throw std::runtime_error("Server: scaler width does not match "
                                 "the model");
    laneTallies_.resize(queue_.lanes());
    batcher_ = std::thread([this] { serveLoop(); });
}

Server::Server(std::shared_ptr<ModelRegistry> registry, RouteConfig route,
               ServerConfig config, VerdictFn on_verdict,
               RouteTraceFn on_trace)
    : registry_(std::move(registry)), config_(std::move(config)),
      onVerdict_(std::move(on_verdict)), onTrace_(std::move(on_trace)),
      injector_(config_.injector ? config_.injector
                                 : &faults::FaultInjector::global()),
      queue_(makeQueueConfig()), startedAt_(Clock::now())
{
    // The Router constructor validates the spec (models loaded, shared
    // input width, rule labels in range) before any thread starts.
    nextId_.store(config_.ticketBase != 0 ? config_.ticketBase : 1);
    router_.emplace(registry_, std::move(route));
    inputDim_ = router_->inputDim();
    laneTallies_.resize(queue_.lanes());
    modelTallies_.resize(router_->models().size());
    batcher_ = std::thread([this] { serveLoop(); });
}

Server::~Server()
{
    stop();
}

SubmitResult
Server::submit(std::vector<double> features, std::size_t lane)
{
    if (features.size() != inputDim_)
        throw std::runtime_error(common::format(
            "Server: row has %zu features, model expects %zu",
            features.size(), inputDim_));
    if (scaler_) {
        const std::vector<double> &means = scaler_->means();
        const std::vector<double> &stds = scaler_->stddevs();
        for (std::size_t c = 0; c < features.size(); ++c)
            features[c] = (features[c] - means[c]) / stds[c];
    }
    Request request;
    std::uint64_t id = nextId_.fetch_add(1);
    request.id = id;
    request.features = std::move(features);
    SubmitResult result;
    result.status = submitStatusFor(queue_.push(std::move(request), lane));
    if (result.admitted())
        result.ticket = id;
    return result;
}

SubmitResult
Server::submitPacket(const net::RawPacket &packet, std::size_t lane)
{
    if (inputDim_ != net::kNumTcFeatures)
        throw std::runtime_error(common::format(
            "Server: model expects %zu features but the packet "
            "extractor emits %zu",
            inputDim_, net::kNumTcFeatures));
    return submit(extractor_.extract(packet), lane);
}

SubmitResult
Server::submitFrame(const std::vector<std::uint8_t> &frame,
                    std::size_t lane)
{
    auto packet = net::parse(frame);
    if (!packet) {
        malformed_.fetch_add(1);
        SubmitResult result;
        result.status = SubmitStatus::kMalformed;
        return result;
    }
    return submitPacket(*packet, lane);
}

void
Server::servedSliceStats(const RequestBatch &batch, std::size_t begin,
                         std::size_t end, Clock::time_point finished,
                         double batch_us,
                         const std::vector<RouteStepStats> *steps,
                         const RouteBatchOutcome &outcome)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    LaneTally &tally = laneTallies_[batch.lane];
    ++batches_;
    ++tally.batches;
    rowsServed_ += end - begin;
    tally.rowsServed += end - begin;
    deadlineTruncated_ += outcome.deadlineTruncated;
    fallbackRows_ += outcome.fallbackRows;
    batchLatenciesUs_.add(batch_us, reservoirRng_);
    for (std::size_t r = begin; r < end; ++r) {
        double wait_us = std::chrono::duration<double, std::micro>(
                             finished - batch.requests[r].enqueuedAt)
                             .count();
        requestLatenciesUs_.add(wait_us, reservoirRng_);
        tally.requestLatenciesUs.add(wait_us, reservoirRng_);
    }
    if (steps) {
        for (const RouteStepStats &step : *steps) {
            ModelTally &model = modelTallies_[step.model];
            ++model.batches;
            model.rowsServed += step.rows;
            model.stepLatenciesUs.add(step.engineUs, reservoirRng_);
        }
    }
}

void
Server::failSlice(const RequestBatch &batch, std::size_t begin,
                  std::size_t end, const std::string &error)
{
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++failedBatches_;
        failedRows_ += end - begin;
        laneTallies_[batch.lane].rowsFailed += end - begin;
    }
    if (!config_.onFailure)
        return;
    for (std::size_t r = begin; r < end; ++r) {
        try {
            config_.onFailure(batch.requests[r].id, batch.lane, error);
        } catch (...) {
            callbackErrors_.fetch_add(1);
        }
    }
}

void
Server::runSlice(RequestBatch &batch, std::size_t begin,
                 std::size_t end, std::size_t depth,
                 ServeBuffers &buffers)
{
    if (begin >= end)
        return;
    std::vector<Request> &requests = batch.requests;
    const std::size_t rows = end - begin;
    const std::size_t dim = inputDim_;
    RouteBatchOutcome outcome;

    auto started = Clock::now();
    try {
        // The queue handoff site fires once per popped batch, before
        // any work — a "flush lost" fault, retryable like the rest.
        if (depth == 0)
            injector_->maybe(faults::kSiteQueueFlush);
        // A non-finite feature is a poison row: the quantizer's
        // behavior on NaN/Inf is undefined across kernels, so the
        // whole slice throws here and the bisect-retry narrows the
        // blast radius down to the poison rows themselves.
        for (std::size_t r = begin; r < end; ++r)
            for (std::size_t c = 0; c < dim; ++c)
                if (!std::isfinite(requests[r].features[c]))
                    throw std::runtime_error(
                        "serve: non-finite feature in admitted row");
        if (router_) {
            // Pin the active epoch of every routed model *once*: the
            // whole slice — every chained hop included — executes
            // against this snapshot, so a concurrent swap() only moves
            // the next batch (a bisect-retried half re-pins, like any
            // new batch).
            Router::Snapshot snapshot = router_->snapshot();
            outcome = router_->runBatch(
                snapshot, batch.lane, requests.data() + begin, rows,
                buffers.labels, onTrace_ ? &buffers.traces : nullptr,
                buffers.steps, buffers.scratch, injector_);
        } else {
            buffers.features.resizeRows(rows);
            for (std::size_t r = 0; r < rows; ++r) {
                double *row = buffers.features.rowPtr(r);
                for (std::size_t c = 0; c < dim; ++c)
                    row[c] = requests[begin + r].features[c];
            }
            injector_->maybe(faults::kSiteEngineRun);
            buffers.labels.resize(rows);
            engine_->run(buffers.features, buffers.labels.data());
        }
    } catch (const std::exception &e) {
        if (rows > 1 && depth < config_.retryDepth) {
            // Bisect-retry: split the slice and run the halves
            // independently. Poison rows re-fail down to singletons;
            // their healthy batchmates get served.
            {
                std::lock_guard<std::mutex> lock(statsMutex_);
                ++retriedBatches_;
            }
            std::size_t mid = begin + rows / 2;
            runSlice(batch, begin, mid, depth + 1, buffers);
            runSlice(batch, mid, end, depth + 1, buffers);
        } else {
            failSlice(batch, begin, end, e.what());
        }
        return;
    }
    auto finished = Clock::now();
    double batch_us =
        std::chrono::duration<double, std::micro>(finished - started)
            .count();

    servedSliceStats(batch, begin, end, finished, batch_us,
                     router_ ? &buffers.steps : nullptr, outcome);
    // Callback delivery: each invocation individually guarded, so one
    // throwing callback costs its own notification, never the
    // batcher thread or the rest of the batch.
    if (onVerdict_) {
        for (std::size_t r = 0; r < rows; ++r) {
            try {
                injector_->maybe(faults::kSiteCallbackDispatch);
                onVerdict_(requests[begin + r], buffers.labels[r]);
            } catch (...) {
                callbackErrors_.fetch_add(1);
            }
        }
    }
    if (onTrace_) {
        for (std::size_t r = 0; r < rows; ++r) {
            try {
                injector_->maybe(faults::kSiteCallbackDispatch);
                onTrace_(requests[begin + r], buffers.traces[r]);
            } catch (...) {
                callbackErrors_.fetch_add(1);
            }
        }
    }
}

void
Server::serveLoop()
{
    // One buffer set sized for the largest lane's batch; deadline
    // flushes release continuously varying batch sizes, and resizeRows
    // keeps the capacity, so the hot loop never reallocates after the
    // first full batch. (The routed path keeps its own equivalent
    // buffers in the router Scratch.)
    std::size_t max_batch = 1;
    for (std::size_t lane = 0; lane < queue_.lanes(); ++lane)
        max_batch = std::max(max_batch, queue_.policy(lane).maxBatch);
    ServeBuffers buffers;
    buffers.features = math::Matrix(max_batch, inputDim_);
    buffers.labels.reserve(max_batch);

    // The supervisor: every popped batch executes inside runSlice's
    // try/catch, so nothing a batch does — engine throw, router throw,
    // poison row, injected fault — can take the batcher thread down.
    while (std::optional<RequestBatch> batch = queue_.pop())
        runSlice(*batch, 0, batch->requests.size(), 0, buffers);
}

ServerStats
Server::stop()
{
    std::lock_guard<std::mutex> stop_lock(stopMutex_);
    if (stopped_)
        return finalStats_;

    queue_.close();
    if (batcher_.joinable())
        batcher_.join();

    ServerStats stats;
    stats.queue = queue_.counters();
    stats.malformedFrames =
        static_cast<std::size_t>(malformed_.load());
    stats.callbackErrors =
        static_cast<std::size_t>(callbackErrors_.load());
    stats.wallSeconds =
        std::chrono::duration<double>(Clock::now() - startedAt_).count();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats.rowsServed = rowsServed_;
        stats.batches = batches_;
        stats.failedBatches = failedBatches_;
        stats.failedRows = failedRows_;
        stats.retriedBatches = retriedBatches_;
        stats.deadlineTruncated = deadlineTruncated_;
        stats.fallbackRows = fallbackRows_;
        stats.meanBatchRows =
            batches_ > 0 ? static_cast<double>(rowsServed_) /
                               static_cast<double>(batches_)
                         : 0.0;
        // A run that served nothing keeps every percentile at its
        // zeroed default instead of consulting empty reservoirs.
        if (batches_ > 0) {
            stats.p50BatchLatencyUs = math::percentileNearestRank(
                batchLatenciesUs_.samples, 0.50);
            stats.p99BatchLatencyUs = math::percentileNearestRank(
                batchLatenciesUs_.samples, 0.99);
        }
        if (rowsServed_ > 0) {
            stats.p50RequestLatencyUs = math::percentileNearestRank(
                requestLatenciesUs_.samples, 0.50);
            stats.p99RequestLatencyUs = math::percentileNearestRank(
                requestLatenciesUs_.samples, 0.99);
        }
        stats.batchLatencySamplesUs = batchLatenciesUs_.samples;
        stats.requestLatencySamplesUs = requestLatenciesUs_.samples;
        stats.lanes.resize(queue_.lanes());
        for (std::size_t lane = 0; lane < queue_.lanes(); ++lane) {
            LaneStats &out = stats.lanes[lane];
            const LaneTally &tally = laneTallies_[lane];
            out.queue = queue_.counters(lane);
            out.rowsServed = tally.rowsServed;
            out.rowsFailed = tally.rowsFailed;
            out.batches = tally.batches;
            if (tally.rowsServed > 0) {
                out.p50RequestLatencyUs = math::percentileNearestRank(
                    tally.requestLatenciesUs.samples, 0.50);
                out.p99RequestLatencyUs = math::percentileNearestRank(
                    tally.requestLatenciesUs.samples, 0.99);
            }
            out.requestLatencySamplesUs =
                tally.requestLatenciesUs.samples;
        }
        if (router_) {
            const std::vector<std::string> &names = router_->models();
            stats.models.resize(names.size());
            for (std::size_t m = 0; m < names.size(); ++m) {
                ModelStats &out = stats.models[m];
                const ModelTally &tally = modelTallies_[m];
                out.name = names[m];
                out.activeVersion = registry_->activeVersion(names[m]);
                out.rowsServed = tally.rowsServed;
                out.batches = tally.batches;
                if (tally.batches > 0) {
                    out.p50StepLatencyUs = math::percentileNearestRank(
                        tally.stepLatenciesUs.samples, 0.50);
                    out.p99StepLatencyUs = math::percentileNearestRank(
                        tally.stepLatenciesUs.samples, 0.99);
                }
                out.stepLatencySamplesUs = tally.stepLatenciesUs.samples;
                BreakerSnapshot breaker = router_->breaker(m);
                out.breakerState = breakerStateName(breaker.state);
                out.breakerOpens = breaker.opens;
                out.breakerFallbackRows = breaker.fallbackRows;
            }
        }
    }
    finalStats_ = stats;
    stopped_ = true;
    return finalStats_;
}

}  // namespace homunculus::runtime
