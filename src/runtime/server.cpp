#include "runtime/server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/string_util.hpp"

namespace homunculus::runtime {

namespace {

using Clock = std::chrono::steady_clock;

/** Translate a queue admission outcome into the submit result. */
SubmitStatus
submitStatusFor(Admission admission)
{
    switch (admission) {
      case Admission::kAdmitted: return SubmitStatus::kAdmitted;
      case Admission::kShed: return SubmitStatus::kShed;
      case Admission::kTimedOut: return SubmitStatus::kTimedOut;
      case Admission::kRejectedClosed:
        return SubmitStatus::kRejectedClosed;
    }
    return SubmitStatus::kShed;
}

/** Nearest-rank percentile over a snapshot entry's reservoir. */
double
entryPercentile(const telemetry::MetricsSnapshot::Entry *entry, double p)
{
    return entry != nullptr ? entry->percentile(p * 100.0) : 0.0;
}

}  // namespace

QueueConfig
Server::makeQueueConfig()
{
    QueueConfig queue;
    queue.lanes.push_back(config_.queue);
    queue.lanes.insert(queue.lanes.end(), config_.extraLanes.begin(),
                       config_.extraLanes.end());
    queue.backpressure = config_.backpressure;
    queue.blockTimeoutUs = config_.blockTimeoutUs;
    queue.fairnessAgingUs = config_.fairnessAgingUs;
    queue.metrics = metrics_.get();
    if (config_.onDrop || config_.trace) {
        // Guard the user's drop sink like every other callback: it runs
        // on the batcher thread inside pop(), where a throw used to be
        // thread death. A bound trace sink records the drop span here
        // too — a dropped request's span is its only trace.
        DropFn user = config_.onDrop;
        telemetry::TraceSink *sink = config_.trace;
        queue.onDrop = [this, user, sink](std::uint64_t ticket,
                                          std::size_t lane,
                                          std::uint64_t waited_us) {
            if (sink != nullptr) {
                telemetry::RequestSpan span;
                span.ticket = ticket;
                span.lane = static_cast<std::uint32_t>(lane);
                span.flushedAtUs = sink->sinceEpochUs(Clock::now());
                span.enqueuedAtUs =
                    span.flushedAtUs -
                    static_cast<std::int64_t>(waited_us);
                span.outcome = telemetry::SpanOutcome::kDropped;
                span.latencyUs = static_cast<double>(waited_us);
                sink->record(span);
            }
            if (user) {
                try {
                    user(ticket, lane, waited_us);
                } catch (...) {
                    ins_.callbackErrors->add();
                }
            }
        };
    }
    return queue;
}

void
Server::bindInstruments()
{
    telemetry::MetricRegistry &reg = *metrics_;
    ins_.rowsServed = &reg.counter("server.rows_served");
    ins_.batches = &reg.counter("server.batches");
    ins_.failedBatches = &reg.counter("server.failed_batches");
    ins_.failedRows = &reg.counter("server.failed_rows");
    ins_.retriedBatches = &reg.counter("server.retried_batches");
    ins_.deadlineTruncated = &reg.counter("server.deadline_truncated");
    ins_.fallbackRows = &reg.counter("server.fallback_rows");
    ins_.callbackErrors = &reg.counter("server.callback_errors");
    ins_.malformedFrames = &reg.counter("server.malformed_frames");
    ins_.batchLatencyUs = &reg.histogram("server.batch_latency_us");
    ins_.requestLatencyUs = &reg.histogram("server.request_latency_us");

    laneIns_.resize(queue_.lanes());
    for (std::size_t lane = 0; lane < queue_.lanes(); ++lane) {
        telemetry::Labels labels{{"lane", std::to_string(lane)}};
        LaneInstruments &ins = laneIns_[lane];
        ins.rowsServed = &reg.counter("server.lane.rows_served", labels);
        ins.rowsFailed = &reg.counter("server.lane.rows_failed", labels);
        ins.batches = &reg.counter("server.lane.batches", labels);
        ins.requestLatencyUs =
            &reg.histogram("server.lane.request_latency_us", labels);
    }
    if (router_) {
        const std::vector<std::string> &names = router_->models();
        modelIns_.resize(names.size());
        spanModelIds_.resize(names.size(), 0);
        for (std::size_t m = 0; m < names.size(); ++m) {
            telemetry::Labels labels{{"model", names[m]}};
            ModelInstruments &ins = modelIns_[m];
            ins.rows = &reg.counter("server.model.rows", labels);
            ins.steps = &reg.counter("server.model.steps", labels);
            ins.stepLatencyUs =
                &reg.histogram("server.model.step_latency_us", labels);
            if (config_.trace != nullptr)
                spanModelIds_[m] = config_.trace->internModel(names[m]);
        }
    }
}

Server::Server(InferenceEngine engine, ServerConfig config,
               VerdictFn on_verdict,
               std::optional<ml::StandardScaler> scaler)
    : engine_(std::move(engine)), config_(std::move(config)),
      onVerdict_(std::move(on_verdict)), scaler_(std::move(scaler)),
      injector_(config_.injector ? config_.injector
                                 : &faults::FaultInjector::global()),
      metrics_(config_.metrics
                   ? config_.metrics
                   : std::make_shared<telemetry::MetricRegistry>()),
      queue_(makeQueueConfig()), startedAt_(Clock::now())
{
    nextId_.store(config_.ticketBase != 0 ? config_.ticketBase : 1);
    inputDim_ = engine_->plan().inputDim();
    if (scaler_ && !scaler_->fitted())
        throw std::runtime_error("Server: scaler is not fitted");
    if (scaler_ && scaler_->means().size() != inputDim_)
        throw std::runtime_error("Server: scaler width does not match "
                                 "the model");
    bindInstruments();
    batcher_ = std::thread([this] { serveLoop(); });
}

Server::Server(std::shared_ptr<ModelRegistry> registry, RouteConfig route,
               ServerConfig config, VerdictFn on_verdict,
               RouteTraceFn on_trace)
    : registry_(std::move(registry)), config_(std::move(config)),
      onVerdict_(std::move(on_verdict)), onTrace_(std::move(on_trace)),
      injector_(config_.injector ? config_.injector
                                 : &faults::FaultInjector::global()),
      metrics_(config_.metrics
                   ? config_.metrics
                   : std::make_shared<telemetry::MetricRegistry>()),
      queue_(makeQueueConfig()), startedAt_(Clock::now())
{
    // The Router constructor validates the spec (models loaded, shared
    // input width, rule labels in range) before any thread starts. It
    // shares this server's registry so one snapshot covers all layers.
    nextId_.store(config_.ticketBase != 0 ? config_.ticketBase : 1);
    router_.emplace(registry_, std::move(route), metrics_.get());
    inputDim_ = router_->inputDim();
    bindInstruments();
    batcher_ = std::thread([this] { serveLoop(); });
}

Server::~Server()
{
    stop();
}

SubmitResult
Server::submit(std::vector<double> features, std::size_t lane)
{
    if (features.size() != inputDim_)
        throw std::runtime_error(common::format(
            "Server: row has %zu features, model expects %zu",
            features.size(), inputDim_));
    if (scaler_) {
        const std::vector<double> &means = scaler_->means();
        const std::vector<double> &stds = scaler_->stddevs();
        for (std::size_t c = 0; c < features.size(); ++c)
            features[c] = (features[c] - means[c]) / stds[c];
    }
    Request request;
    std::uint64_t id = nextId_.fetch_add(1);
    request.id = id;
    request.features = std::move(features);
    SubmitResult result;
    result.status = submitStatusFor(queue_.push(std::move(request), lane));
    if (result.admitted())
        result.ticket = id;
    return result;
}

SubmitResult
Server::submitPacket(const net::RawPacket &packet, std::size_t lane)
{
    if (inputDim_ != net::kNumTcFeatures)
        throw std::runtime_error(common::format(
            "Server: model expects %zu features but the packet "
            "extractor emits %zu",
            inputDim_, net::kNumTcFeatures));
    return submit(extractor_.extract(packet), lane);
}

SubmitResult
Server::submitFrame(const std::vector<std::uint8_t> &frame,
                    std::size_t lane)
{
    auto packet = net::parse(frame);
    if (!packet) {
        // A malformed frame is a per-ticket failure, not an anonymous
        // tick: it gets a ticket from the same sequence as admitted
        // rows and an onFailure notification under it (on the
        // submitting thread — the frame never reaches the batcher).
        // It was never admitted, so it does not count in failedRows
        // and the resolve-exactly-once invariant over accepted rows
        // is untouched.
        std::uint64_t ticket = nextId_.fetch_add(1);
        ins_.malformedFrames->add();
        if (config_.onFailure) {
            try {
                config_.onFailure(ticket, lane, "malformed frame");
            } catch (...) {
                ins_.callbackErrors->add();
            }
        }
        SubmitResult result;
        result.status = SubmitStatus::kMalformed;
        result.ticket = ticket;
        return result;
    }
    return submitPacket(*packet, lane);
}

void
Server::servedSliceStats(const RequestBatch &batch, std::size_t begin,
                         std::size_t end, Clock::time_point finished,
                         double batch_us,
                         const std::vector<RouteStepStats> *steps,
                         const RouteBatchOutcome &outcome)
{
    LaneInstruments &lane = laneIns_[batch.lane];
    ins_.batches->add();
    lane.batches->add();
    ins_.rowsServed->add(end - begin);
    lane.rowsServed->add(end - begin);
    ins_.deadlineTruncated->add(outcome.deadlineTruncated);
    ins_.fallbackRows->add(outcome.fallbackRows);
    ins_.batchLatencyUs->observe(batch_us);
    for (std::size_t r = begin; r < end; ++r) {
        double wait_us = std::chrono::duration<double, std::micro>(
                             finished - batch.requests[r].enqueuedAt)
                             .count();
        ins_.requestLatencyUs->observe(wait_us);
        lane.requestLatencyUs->observe(wait_us);
    }
    if (steps) {
        for (const RouteStepStats &step : *steps) {
            ModelInstruments &model = modelIns_[step.model];
            model.steps->add();
            model.rows->add(step.rows);
            model.stepLatencyUs->observe(step.engineUs);
        }
    }
}

void
Server::recordSpans(const RequestBatch &batch, std::size_t begin,
                    std::size_t end, Clock::time_point finished,
                    std::size_t depth, telemetry::SpanOutcome outcome,
                    const std::vector<RouteTrace> *traces)
{
    telemetry::TraceSink *sink = config_.trace;
    if (sink == nullptr)
        return;
    const std::vector<std::string> *names =
        router_ ? &router_->models() : nullptr;
    for (std::size_t r = begin; r < end; ++r) {
        const Request &request = batch.requests[r];
        telemetry::RequestSpan span;
        span.ticket = request.id;
        span.lane = static_cast<std::uint32_t>(batch.lane);
        span.enqueuedAtUs = sink->sinceEpochUs(request.enqueuedAt);
        span.flushedAtUs = sink->sinceEpochUs(finished);
        span.retries = static_cast<std::uint8_t>(
            std::min<std::size_t>(depth, 255));
        span.outcome = outcome;
        span.latencyUs = std::chrono::duration<double, std::micro>(
                             finished - request.enqueuedAt)
                             .count();
        if (traces != nullptr && names != nullptr) {
            // Hops are slice-relative; resolve each hop's model name
            // back to the id interned at construction.
            const RouteTrace &trace = (*traces)[r - begin];
            for (const RouteHop &hop : trace.hops) {
                if (span.hopCount >= telemetry::kSpanMaxHops)
                    break;
                for (std::size_t m = 0; m < names->size(); ++m) {
                    if ((*names)[m] == hop.model) {
                        span.hops[span.hopCount++] = spanModelIds_[m];
                        break;
                    }
                }
            }
        }
        sink->record(span);
    }
}

void
Server::failSlice(const RequestBatch &batch, std::size_t begin,
                  std::size_t end, std::size_t depth,
                  const std::string &error)
{
    ins_.failedBatches->add();
    ins_.failedRows->add(end - begin);
    laneIns_[batch.lane].rowsFailed->add(end - begin);
    recordSpans(batch, begin, end, Clock::now(), depth,
                telemetry::SpanOutcome::kFailed, nullptr);
    if (!config_.onFailure)
        return;
    for (std::size_t r = begin; r < end; ++r) {
        try {
            config_.onFailure(batch.requests[r].id, batch.lane, error);
        } catch (...) {
            ins_.callbackErrors->add();
        }
    }
}

void
Server::runSlice(RequestBatch &batch, std::size_t begin,
                 std::size_t end, std::size_t depth,
                 ServeBuffers &buffers)
{
    if (begin >= end)
        return;
    std::vector<Request> &requests = batch.requests;
    const std::size_t rows = end - begin;
    const std::size_t dim = inputDim_;
    RouteBatchOutcome outcome;
    // Routed hop traces are collected for the user's trace callback
    // and/or the span sink (spans record the hop ids per request).
    const bool collect_traces =
        router_ && (onTrace_ || config_.trace != nullptr);

    auto started = Clock::now();
    try {
        // The queue handoff site fires once per popped batch, before
        // any work — a "flush lost" fault, retryable like the rest.
        if (depth == 0)
            injector_->maybe(faults::kSiteQueueFlush);
        // A non-finite feature is a poison row: the quantizer's
        // behavior on NaN/Inf is undefined across kernels, so the
        // whole slice throws here and the bisect-retry narrows the
        // blast radius down to the poison rows themselves.
        for (std::size_t r = begin; r < end; ++r)
            for (std::size_t c = 0; c < dim; ++c)
                if (!std::isfinite(requests[r].features[c]))
                    throw std::runtime_error(
                        "serve: non-finite feature in admitted row");
        if (router_) {
            // Pin the active epoch of every routed model *once*: the
            // whole slice — every chained hop included — executes
            // against this snapshot, so a concurrent swap() only moves
            // the next batch (a bisect-retried half re-pins, like any
            // new batch).
            Router::Snapshot snapshot = router_->snapshot();
            outcome = router_->runBatch(
                snapshot, batch.lane, requests.data() + begin, rows,
                buffers.labels,
                collect_traces ? &buffers.traces : nullptr,
                buffers.steps, buffers.scratch, injector_);
        } else {
            buffers.features.resizeRows(rows);
            for (std::size_t r = 0; r < rows; ++r) {
                double *row = buffers.features.rowPtr(r);
                for (std::size_t c = 0; c < dim; ++c)
                    row[c] = requests[begin + r].features[c];
            }
            injector_->maybe(faults::kSiteEngineRun);
            buffers.labels.resize(rows);
            engine_->run(buffers.features, buffers.labels.data());
        }
    } catch (const std::exception &e) {
        if (rows > 1 && depth < config_.retryDepth) {
            // Bisect-retry: split the slice and run the halves
            // independently. Poison rows re-fail down to singletons;
            // their healthy batchmates get served.
            ins_.retriedBatches->add();
            std::size_t mid = begin + rows / 2;
            runSlice(batch, begin, mid, depth + 1, buffers);
            runSlice(batch, mid, end, depth + 1, buffers);
        } else {
            failSlice(batch, begin, end, depth, e.what());
        }
        return;
    }
    auto finished = Clock::now();
    double batch_us =
        std::chrono::duration<double, std::micro>(finished - started)
            .count();

    servedSliceStats(batch, begin, end, finished, batch_us,
                     router_ ? &buffers.steps : nullptr, outcome);
    recordSpans(batch, begin, end, finished, depth,
                telemetry::SpanOutcome::kServed,
                collect_traces ? &buffers.traces : nullptr);
    // Callback delivery: each invocation individually guarded, so one
    // throwing callback costs its own notification, never the
    // batcher thread or the rest of the batch.
    if (onVerdict_) {
        for (std::size_t r = 0; r < rows; ++r) {
            try {
                injector_->maybe(faults::kSiteCallbackDispatch);
                onVerdict_(requests[begin + r], buffers.labels[r]);
            } catch (...) {
                ins_.callbackErrors->add();
            }
        }
    }
    if (onTrace_) {
        for (std::size_t r = 0; r < rows; ++r) {
            try {
                injector_->maybe(faults::kSiteCallbackDispatch);
                onTrace_(requests[begin + r], buffers.traces[r]);
            } catch (...) {
                ins_.callbackErrors->add();
            }
        }
    }
}

void
Server::serveLoop()
{
    // One buffer set sized for the largest lane's batch; deadline
    // flushes release continuously varying batch sizes, and resizeRows
    // keeps the capacity, so the hot loop never reallocates after the
    // first full batch. (The routed path keeps its own equivalent
    // buffers in the router Scratch.)
    std::size_t max_batch = 1;
    for (std::size_t lane = 0; lane < queue_.lanes(); ++lane)
        max_batch = std::max(max_batch, queue_.policy(lane).maxBatch);
    ServeBuffers buffers;
    buffers.features = math::Matrix(max_batch, inputDim_);
    buffers.labels.reserve(max_batch);

    // The supervisor: every popped batch executes inside runSlice's
    // try/catch, so nothing a batch does — engine throw, router throw,
    // poison row, injected fault — can take the batcher thread down.
    while (std::optional<RequestBatch> batch = queue_.pop())
        runSlice(*batch, 0, batch->requests.size(), 0, buffers);
}

ServerStats
Server::stop()
{
    std::lock_guard<std::mutex> stop_lock(stopMutex_);
    if (stopped_)
        return finalStats_;

    queue_.close();
    if (batcher_.joinable())
        batcher_.join();

    // Materialize the public view from one registry snapshot — the
    // batcher has joined, so the snapshot is the run's final word.
    telemetry::MetricsSnapshot snap = metrics_->snapshot();
    ServerStats stats;
    stats.queue = queue_.counters();
    stats.malformedFrames = static_cast<std::size_t>(
        snap.counterValue("server.malformed_frames"));
    stats.callbackErrors = static_cast<std::size_t>(
        snap.counterValue("server.callback_errors"));
    stats.wallSeconds =
        std::chrono::duration<double>(Clock::now() - startedAt_).count();
    stats.rowsServed = static_cast<std::size_t>(
        snap.counterValue("server.rows_served"));
    stats.batches =
        static_cast<std::size_t>(snap.counterValue("server.batches"));
    stats.failedBatches = static_cast<std::size_t>(
        snap.counterValue("server.failed_batches"));
    stats.failedRows = static_cast<std::size_t>(
        snap.counterValue("server.failed_rows"));
    stats.retriedBatches = static_cast<std::size_t>(
        snap.counterValue("server.retried_batches"));
    stats.deadlineTruncated = static_cast<std::size_t>(
        snap.counterValue("server.deadline_truncated"));
    stats.fallbackRows = static_cast<std::size_t>(
        snap.counterValue("server.fallback_rows"));
    stats.meanBatchRows =
        stats.batches > 0 ? static_cast<double>(stats.rowsServed) /
                                static_cast<double>(stats.batches)
                          : 0.0;
    // A run that served nothing keeps every percentile at its zeroed
    // default instead of consulting empty reservoirs.
    const telemetry::MetricsSnapshot::Entry *batch_lat =
        snap.find("server.batch_latency_us");
    const telemetry::MetricsSnapshot::Entry *request_lat =
        snap.find("server.request_latency_us");
    if (stats.batches > 0) {
        stats.p50BatchLatencyUs = entryPercentile(batch_lat, 0.50);
        stats.p99BatchLatencyUs = entryPercentile(batch_lat, 0.99);
    }
    if (stats.rowsServed > 0) {
        stats.p50RequestLatencyUs = entryPercentile(request_lat, 0.50);
        stats.p99RequestLatencyUs = entryPercentile(request_lat, 0.99);
    }
    if (batch_lat != nullptr)
        stats.batchLatencySamplesUs = batch_lat->samples;
    if (request_lat != nullptr)
        stats.requestLatencySamplesUs = request_lat->samples;

    stats.lanes.resize(queue_.lanes());
    for (std::size_t lane = 0; lane < queue_.lanes(); ++lane) {
        telemetry::Labels labels{{"lane", std::to_string(lane)}};
        LaneStats &out = stats.lanes[lane];
        out.queue = queue_.counters(lane);
        out.rowsServed = static_cast<std::size_t>(
            snap.counterValue("server.lane.rows_served", labels));
        out.rowsFailed = static_cast<std::size_t>(
            snap.counterValue("server.lane.rows_failed", labels));
        out.batches = static_cast<std::size_t>(
            snap.counterValue("server.lane.batches", labels));
        const telemetry::MetricsSnapshot::Entry *lane_lat =
            snap.find("server.lane.request_latency_us", labels);
        if (out.rowsServed > 0) {
            out.p50RequestLatencyUs = entryPercentile(lane_lat, 0.50);
            out.p99RequestLatencyUs = entryPercentile(lane_lat, 0.99);
        }
        if (lane_lat != nullptr)
            out.requestLatencySamplesUs = lane_lat->samples;
    }
    if (router_) {
        const std::vector<std::string> &names = router_->models();
        stats.models.resize(names.size());
        for (std::size_t m = 0; m < names.size(); ++m) {
            telemetry::Labels labels{{"model", names[m]}};
            ModelStats &out = stats.models[m];
            out.name = names[m];
            out.activeVersion = registry_->activeVersion(names[m]);
            out.rowsServed = static_cast<std::size_t>(
                snap.counterValue("server.model.rows", labels));
            out.batches = static_cast<std::size_t>(
                snap.counterValue("server.model.steps", labels));
            const telemetry::MetricsSnapshot::Entry *step_lat =
                snap.find("server.model.step_latency_us", labels);
            if (out.batches > 0) {
                out.p50StepLatencyUs = entryPercentile(step_lat, 0.50);
                out.p99StepLatencyUs = entryPercentile(step_lat, 0.99);
            }
            if (step_lat != nullptr)
                out.stepLatencySamplesUs = step_lat->samples;
            BreakerSnapshot breaker = router_->breaker(m);
            out.breakerState = breakerStateName(breaker.state);
            out.breakerOpens = breaker.opens;
            out.breakerFallbackRows = breaker.fallbackRows;
        }
    }
    finalStats_ = stats;
    stopped_ = true;
    return finalStats_;
}

}  // namespace homunculus::runtime
