/**
 * @file
 * FaultInjector: seed-deterministic, named-site fault injection for the
 * serving plane.
 *
 * A production data-plane server has failure paths that a clean test
 * trace never exercises: an engine batch that throws, a router hop that
 * dies mid-chain, a corrupt artifact read during a hot load. The
 * injector makes every one of those paths reachable *on demand and
 * reproducibly*: code under test calls maybe("engine.run") at each
 * named site, and an armed site throws FaultInjectedError on a
 * deterministic, seed-driven subset of those calls. Determinism is the
 * contract that makes failure testing debuggable — the same seed
 * produces the same per-site fire/no-fire sequence, so "the 3rd batch
 * fails" is a repeatable fixture, not a flake.
 *
 * Arming comes from two places:
 *   - the HOMUNCULUS_FAULTS environment variable
 *     ("site:rate[:seed],site:rate[:seed],..."), parsed once into the
 *     process-global injector the first time global() is consulted —
 *     this is how CI smokes fault a stock homc run without new code;
 *   - programmatic arm()/armSpec() on any instance (ServerConfig can
 *     carry a private injector so concurrent tests don't share state).
 *
 * Cost when disarmed: maybe() is one relaxed atomic load and a return —
 * safe to leave in the hottest serving loops. Decisions for an armed
 * site are made under a mutex (per-site call counter + splitmix64 of
 * the seed), which only the faulted configurations pay.
 *
 * Well-known sites (checked by runtime/ and tools/ code):
 *   engine.run        single-model Server batch execution
 *   router.hop        every routed model execution (also checked as
 *                     "router.hop.<model>" to target one model)
 *   queue.flush       batch handoff from the RequestQueue to the batcher
 *   artifact.read     ModelRegistry::loadFile (global injector only)
 *   callback.dispatch user verdict/trace callback invocation
 *   compile.search    CompileSession family search (global injector
 *                     only) — surfaces as a Status, not a throw
 *   cache.quantize    QuantCache artifact quantization (global
 *                     injector only)
 *
 * Every fire is also mirrored as a "faults.fired" {site=...} counter in
 * the process-global telemetry registry, so --serve-stats-json dumps
 * carry the injection record alongside the serving counters.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace homunculus::runtime::faults {

/** Seed used when a spec entry leaves the seed field off. */
constexpr std::uint64_t kDefaultFaultSeed = 0xFA017u;

/** Site name constants for the hooks wired into the runtime. */
constexpr const char *kSiteEngineRun = "engine.run";
constexpr const char *kSiteRouterHop = "router.hop";
constexpr const char *kSiteQueueFlush = "queue.flush";
constexpr const char *kSiteArtifactRead = "artifact.read";
constexpr const char *kSiteCallbackDispatch = "callback.dispatch";
constexpr const char *kSiteCompileSearch = "compile.search";
constexpr const char *kSiteCacheQuantize = "cache.quantize";

/** One armed site: fire with probability @p rate per check, decided by
 *  a deterministic hash of (@p seed, per-site check counter). */
struct FaultSite
{
    std::string site;
    double rate = 0.0;                       ///< in [0, 1].
    std::uint64_t seed = kDefaultFaultSeed;
};

/** What an armed site throws when it fires. Distinguishable from real
 *  failures so tests can assert the injection reached the right
 *  handler. */
class FaultInjectedError : public std::runtime_error
{
  public:
    explicit FaultInjectedError(const std::string &site)
        : std::runtime_error("fault-injected: " + site), site_(site)
    {
    }
    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

class FaultInjector
{
  public:
    FaultInjector() = default;

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * The process-global injector, armed once (on first call) from
     * HOMUNCULUS_FAULTS when the variable is set. Hooks with no
     * per-instance injector (ModelRegistry::loadFile) consult this one.
     * @throws std::runtime_error when the env spec is malformed.
     */
    static FaultInjector &global();

    /**
     * Parse a "site:rate[:seed]" comma list. Rates must be in [0, 1];
     * seeds are full-string unsigned integers.
     * @throws std::runtime_error on any malformed entry.
     */
    static std::vector<FaultSite> parseSpec(const std::string &text);

    /** Arm (or re-arm, resetting counters) one site. */
    void arm(const std::string &site, double rate,
             std::uint64_t seed = kDefaultFaultSeed);
    /** Arm every site in a "site:rate[:seed],..." spec. */
    void armSpec(const std::string &spec);
    /** Disarm every site (counters discarded). */
    void disarm();
    /** Disarm one site. */
    void disarm(const std::string &site);

    /** Any site armed? One relaxed load — the fast-path gate. */
    bool armed() const
    {
        return armed_.load(std::memory_order_acquire);
    }

    /** The hook: no-op when nothing is armed; otherwise consult
     *  @p site's deterministic sequence and throw FaultInjectedError
     *  when it fires. */
    void maybe(const char *site)
    {
        if (!armed())
            return;
        if (shouldFail(site))
            throw FaultInjectedError(site);
    }

    /** Non-throwing form of maybe() (advances the same sequence). */
    bool shouldFail(const char *site);

    /** Times @p site fired / was checked since arming. */
    std::uint64_t fired(const std::string &site) const;
    std::uint64_t checked(const std::string &site) const;

    /** The currently armed sites (rate/seed as armed). */
    std::vector<FaultSite> sites() const;

  private:
    struct SiteState
    {
        double rate = 0.0;
        std::uint64_t seed = kDefaultFaultSeed;
        std::uint64_t checks = 0;
        std::uint64_t fired = 0;
    };

    mutable std::mutex mutex_;
    std::atomic<bool> armed_{false};
    std::map<std::string, SiteState> sites_;
};

}  // namespace homunculus::runtime::faults
