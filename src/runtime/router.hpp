/**
 * @file
 * Router: per-lane model binding and label-driven DAG chaining over a
 * ModelRegistry.
 *
 * The batcher thread used to execute one fixed plan; with a registry of
 * co-resident models the question per batch becomes *which* plan — and
 * for chained apps (the paper's flagship deployment: a cheap front
 * classifier whose verdict routes suspicious rows into a deeper
 * per-app model), *which plans, in what order*. The router answers
 * both from a declarative RouteConfig, the ASAP-style workflow-spec
 * idiom: lanes bind to entry models, chain rules map (model, output
 * label) to the next model, and runBatch() executes the resulting
 * small schedule-DAG for one admitted batch:
 *
 *   1. every row starts at its lane's entry model;
 *   2. rows are grouped by model, each group runs as one engine batch
 *      (per-model scaling applied from the epoch's artifact scaler);
 *   3. a row whose (model, label) matches a chain rule moves to the
 *      next model's group for the next round; everything else keeps
 *      its label as the final verdict;
 *   4. rounds repeat until no rule fires or maxChainDepth model
 *      executions have been spent on the row (which also bounds
 *      accidental rule cycles).
 *
 * Plan-version semantics — the hot-swap contract: snapshot() pins the
 * active epoch of every routed model *once*, and a batch executes
 * entirely against that snapshot. A registry swap mid-batch therefore
 * never mixes plan versions inside a batch; the batch finishes on the
 * epochs it started with and the *next* batch picks up the new
 * versions. Labels are bit-identical to running the same rows
 * single-threaded through the snapshot's plans (the engine's
 * determinism contract, composed per hop).
 *
 * All routed models must consume the same feature schema (equal input
 * width) — chaining re-reads the admitted row, it does not transform
 * features between hops.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "math/matrix.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/request_queue.hpp"

namespace homunculus::runtime {

/** One chaining edge: @p fromModel emitting @p label sends the row on
 *  to @p toModel. */
struct ChainRule
{
    std::string fromModel;
    int label = 0;
    std::string toModel;
};

/** Declarative routing spec (validated by the Router constructor). */
struct RouteConfig
{
    /** Entry model for lanes without an explicit binding. */
    std::string defaultModel;
    /** Per-lane entry models; empty strings (and lanes beyond the
     *  list) fall back to defaultModel. */
    std::vector<std::string> laneModels;
    /** Label-driven chaining edges; at most one per (model, label). */
    std::vector<ChainRule> chain;
    /** Most model executions any one row may consume (>= 1); bounds
     *  chain length and rule cycles alike. */
    std::size_t maxChainDepth = 4;
};

/** One model execution a request went through. */
struct RouteHop
{
    std::string model;
    std::uint64_t version = 0;
    int label = 0;
};

/** The full per-request execution record (last hop's label is the
 *  final verdict). */
struct RouteTrace
{
    std::vector<RouteHop> hops;
};

/** Per-model-execution accounting for one batch. */
struct RouteStepStats
{
    std::size_t model = 0;        ///< index into Router::models().
    std::uint64_t version = 0;
    std::size_t rows = 0;
    double engineUs = 0.0;
};

class Router
{
  public:
    /**
     * Binds @p config against @p registry, resolving model names and
     * validating the spec: every referenced model must be loaded, all
     * must share one input width, chain labels must fit the source
     * model's class count, and no (model, label) may have two rules.
     * @throws std::runtime_error on any violation.
     */
    Router(std::shared_ptr<ModelRegistry> registry, RouteConfig config);

    /**
     * The pinned plan versions one batch executes against: one epoch
     * per routed model, captured atomically-per-model from the
     * registry. Hold it for the whole batch.
     */
    struct Snapshot
    {
        std::vector<std::shared_ptr<const ModelEpoch>> epochs;
    };

    Snapshot snapshot() const;

    /** Reusable buffers so steady-state runBatch() calls stay
     *  allocation-light. Not shareable between concurrent calls. */
    struct Scratch
    {
        math::Matrix input;
        std::vector<int> labels;
        std::vector<std::vector<std::size_t>> current;  ///< per model.
        std::vector<std::vector<std::size_t>> next;
    };

    /**
     * Execute the schedule-DAG for one batch admitted on @p lane
     * against @p snapshot. Writes one final label per request into
     * @p final_labels (row order preserved), appends one RouteStepStats
     * per model execution to @p steps (cleared first), and — when
     * @p traces is non-null — records every hop per request.
     */
    void runBatch(const Snapshot &snapshot, std::size_t lane,
                  const std::vector<Request> &requests,
                  std::vector<int> &final_labels,
                  std::vector<RouteTrace> *traces,
                  std::vector<RouteStepStats> &steps,
                  Scratch &scratch) const;

    /** The shared feature width every routed model consumes. */
    std::size_t inputDim() const { return inputDim_; }

    /** Routed model names, index-aligned with Snapshot::epochs and
     *  RouteStepStats::model. */
    const std::vector<std::string> &models() const { return models_; }

    /** Entry-model name for @p lane. */
    const std::string &modelForLane(std::size_t lane) const;

    const RouteConfig &config() const { return config_; }
    const std::shared_ptr<ModelRegistry> &registry() const
    {
        return registry_;
    }

  private:
    std::size_t indexOf(const std::string &model) const;

    std::shared_ptr<ModelRegistry> registry_;
    RouteConfig config_;
    std::vector<std::string> models_;       ///< unique, route order.
    std::vector<std::size_t> laneModel_;    ///< lane -> model index.
    std::size_t defaultModel_ = 0;          ///< model index.
    /** nextModel_[m][label] = successor model index, or npos. */
    std::vector<std::vector<std::size_t>> nextModel_;
    std::size_t inputDim_ = 0;
};

}  // namespace homunculus::runtime
