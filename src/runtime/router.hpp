/**
 * @file
 * Router: per-lane model binding and label-driven DAG chaining over a
 * ModelRegistry.
 *
 * The batcher thread used to execute one fixed plan; with a registry of
 * co-resident models the question per batch becomes *which* plan — and
 * for chained apps (the paper's flagship deployment: a cheap front
 * classifier whose verdict routes suspicious rows into a deeper
 * per-app model), *which plans, in what order*. The router answers
 * both from a declarative RouteConfig, the ASAP-style workflow-spec
 * idiom: lanes bind to entry models, chain rules map (model, output
 * label) to the next model, and runBatch() executes the resulting
 * small schedule-DAG for one admitted batch:
 *
 *   1. every row starts at its lane's entry model;
 *   2. rows are grouped by model, each group runs as one engine batch
 *      (per-model scaling applied from the epoch's artifact scaler);
 *   3. a row whose (model, label) matches a chain rule moves to the
 *      next model's group for the next round; everything else keeps
 *      its label as the final verdict;
 *   4. rounds repeat until no rule fires or maxChainDepth model
 *      executions have been spent on the row (which also bounds
 *      accidental rule cycles).
 *
 * Plan-version semantics — the hot-swap contract: snapshot() pins the
 * active epoch of every routed model *once*, and a batch executes
 * entirely against that snapshot. A registry swap mid-batch therefore
 * never mixes plan versions inside a batch; the batch finishes on the
 * epochs it started with and the *next* batch picks up the new
 * versions. Labels are bit-identical to running the same rows
 * single-threaded through the snapshot's plans (the engine's
 * determinism contract, composed per hop).
 *
 * All routed models must consume the same feature schema (equal input
 * width) — chaining re-reads the admitted row, it does not transform
 * features between hops.
 *
 * Fault tolerance (opt-in, zero-cost when unconfigured):
 *
 *   - Per-model circuit breakers: when breakerThreshold consecutive
 *     executions of a model throw, its breaker opens and the model is
 *     taken out of rotation. After breakerCooldownUs the breaker
 *     half-opens — the next group routed to the model runs as a probe
 *     batch; success closes the breaker, failure reopens it for another
 *     cooldown. While open, groups follow the model's FallbackRule: to
 *     a fallback model (rows merge into its group for the round) or to
 *     a static verdict label (rows resolve immediately). An open
 *     breaker with no fallback fails the batch — the Server supervisor
 *     turns that into per-request failures.
 *
 *   - Request deadlines: with deadlineUs set, a row whose admission age
 *     exceeds the budget does not start another chain hop — it keeps
 *     the label of the hop it already completed, counted in
 *     RouteBatchOutcome::deadlineTruncated. The entry hop always runs
 *     (an admitted request is owed a verdict); only escalations are
 *     truncated.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "math/matrix.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/request_queue.hpp"
#include "runtime/telemetry.hpp"

namespace homunculus::runtime {

/** One chaining edge: @p fromModel emitting @p label sends the row on
 *  to @p toModel. */
struct ChainRule
{
    std::string fromModel;
    int label = 0;
    std::string toModel;
};

/**
 * Where rows routed to @p model go while its circuit breaker is open:
 * exactly one of @p toModel (another routed model) or @p label (a
 * static verdict in the broken model's class space) must be set.
 */
struct FallbackRule
{
    std::string model;
    std::string toModel;  ///< fallback model; empty when label is used.
    int label = -1;       ///< static verdict; -1 when toModel is used.
};

/** Declarative routing spec (validated by the Router constructor). */
struct RouteConfig
{
    /** Entry model for lanes without an explicit binding. */
    std::string defaultModel;
    /** Per-lane entry models; empty strings (and lanes beyond the
     *  list) fall back to defaultModel. */
    std::vector<std::string> laneModels;
    /** Label-driven chaining edges; at most one per (model, label). */
    std::vector<ChainRule> chain;
    /** Most model executions any one row may consume (>= 1); bounds
     *  chain length and rule cycles alike. */
    std::size_t maxChainDepth = 4;
    /** Consecutive execution failures that open a model's circuit
     *  breaker; 0 disables the breakers entirely. */
    std::size_t breakerThreshold = 0;
    /** How long an open breaker rejects traffic before half-opening
     *  for a probe batch. */
    std::uint64_t breakerCooldownUs = 100'000;
    /** Per-model open-breaker fallbacks; at most one per model. */
    std::vector<FallbackRule> fallbacks;
    /** Per-request chain budget in us from admission; 0 = unbounded.
     *  Rows over budget keep their current hop's label instead of
     *  starting another hop. */
    std::uint64_t deadlineUs = 0;
};

/** One model execution a request went through. */
struct RouteHop
{
    std::string model;
    std::uint64_t version = 0;
    int label = 0;
};

/** The full per-request execution record (last hop's label is the
 *  final verdict). */
struct RouteTrace
{
    std::vector<RouteHop> hops;
};

/** Per-model-execution accounting for one batch. */
struct RouteStepStats
{
    std::size_t model = 0;        ///< index into Router::models().
    std::uint64_t version = 0;
    std::size_t rows = 0;
    double engineUs = 0.0;
};

/** What one runBatch() resolved outside the normal hop path. */
struct RouteBatchOutcome
{
    /** Rows that kept a completed hop's label because the next hop
     *  exceeded their deadline budget. */
    std::size_t deadlineTruncated = 0;
    /** Rows resolved through an open breaker's fallback (redirected to
     *  the fallback model or given its static verdict). */
    std::size_t fallbackRows = 0;
};

/** Circuit-breaker lifecycle (see RouteConfig::breakerThreshold). */
enum class BreakerState
{
    kClosed,    ///< normal service.
    kOpen,      ///< rejecting traffic until the cooldown elapses.
    kHalfOpen,  ///< cooldown elapsed; next group runs as a probe.
};

/** Point-in-time view of one model's breaker. */
struct BreakerSnapshot
{
    BreakerState state = BreakerState::kClosed;
    std::uint64_t opens = 0;        ///< closed/half-open -> open flips.
    std::uint64_t failures = 0;     ///< execution failures recorded.
    std::uint64_t consecutiveFailures = 0;
    std::uint64_t probes = 0;       ///< half-open probe batches granted.
    std::uint64_t fallbackRows = 0; ///< rows routed around this model.
};

const char *breakerStateName(BreakerState state);

class Router
{
  public:
    /**
     * Binds @p config against @p registry, resolving model names and
     * validating the spec: every referenced model must be loaded, all
     * must share one input width, chain labels must fit the source
     * model's class count, and no (model, label) may have two rules.
     * @throws std::runtime_error on any violation.
     */
    Router(std::shared_ptr<ModelRegistry> registry, RouteConfig config,
           telemetry::MetricRegistry *metrics = nullptr);

    /**
     * The pinned plan versions one batch executes against: one epoch
     * per routed model, captured atomically-per-model from the
     * registry. Hold it for the whole batch.
     */
    struct Snapshot
    {
        std::vector<std::shared_ptr<const ModelEpoch>> epochs;
    };

    Snapshot snapshot() const;

    /** Reusable buffers so steady-state runBatch() calls stay
     *  allocation-light. Not shareable between concurrent calls. */
    struct Scratch
    {
        math::Matrix input;
        std::vector<int> labels;
        std::vector<std::vector<std::size_t>> current;  ///< per model.
        std::vector<std::vector<std::size_t>> next;
    };

    /**
     * Execute the schedule-DAG for the @p rows requests at @p requests
     * admitted on @p lane against @p snapshot. Writes one final label
     * per request into @p final_labels (row order preserved), appends
     * one RouteStepStats per model execution to @p steps (cleared
     * first), and — when @p traces is non-null — records every hop per
     * request. @p injector, when non-null, is consulted at
     * "router.hop" (and "router.hop.<model>") before every model
     * execution.
     *
     * Failure semantics: a throwing model execution records a breaker
     * failure for that model and rethrows — the caller owns the batch
     * outcome (the Server supervisor bisects or fails it). The scratch
     * and output buffers are reset on entry, so a failed call may
     * simply be retried.
     */
    RouteBatchOutcome runBatch(const Snapshot &snapshot, std::size_t lane,
                               const Request *requests, std::size_t rows,
                               std::vector<int> &final_labels,
                               std::vector<RouteTrace> *traces,
                               std::vector<RouteStepStats> &steps,
                               Scratch &scratch,
                               faults::FaultInjector *injector =
                                   nullptr) const;

    /** This model's breaker right now (index into models()). */
    BreakerSnapshot breaker(std::size_t model) const;

    /** The shared feature width every routed model consumes. */
    std::size_t inputDim() const { return inputDim_; }

    /** Routed model names, index-aligned with Snapshot::epochs and
     *  RouteStepStats::model. */
    const std::vector<std::string> &models() const { return models_; }

    /** Entry-model name for @p lane. */
    const std::string &modelForLane(std::size_t lane) const;

    const RouteConfig &config() const { return config_; }
    const std::shared_ptr<ModelRegistry> &registry() const
    {
        return registry_;
    }

  private:
    /** Mutable breaker state-machine fields, guarded by breakerMutex_
     *  (runBatch is const; the breakers are bookkeeping, not routing
     *  config). The monotonic counts (opens/failures/probes/
     *  fallbackRows) live in the telemetry registry — BreakerSnapshot
     *  is a view over those instruments. */
    struct Breaker
    {
        BreakerState state = BreakerState::kClosed;
        std::size_t consecutive = 0;
        std::chrono::steady_clock::time_point openedAt;
    };

    /** Per-model breaker + hop instruments ("router.*" {model=name}),
     *  resolved once at construction. */
    struct ModelInstruments
    {
        telemetry::Counter *hops = nullptr;      ///< group executions.
        telemetry::Counter *hopRows = nullptr;   ///< rows per execution.
        telemetry::Counter *opens = nullptr;
        telemetry::Counter *failures = nullptr;
        telemetry::Counter *probes = nullptr;
        telemetry::Counter *fallbackRows = nullptr;
    };

    std::size_t indexOf(const std::string &model) const;
    /** May this model execute a group now? Grants the half-open probe
     *  when the cooldown has elapsed. */
    bool breakerAllows(std::size_t model) const;
    void recordFailure(std::size_t model) const;
    void recordSuccess(std::size_t model) const;

    std::shared_ptr<ModelRegistry> registry_;
    RouteConfig config_;
    std::vector<std::string> models_;       ///< unique, route order.
    std::vector<std::size_t> laneModel_;    ///< lane -> model index.
    std::size_t defaultModel_ = 0;          ///< model index.
    /** nextModel_[m][label] = successor model index, or npos. */
    std::vector<std::vector<std::size_t>> nextModel_;
    /** Per-model open-breaker redirects (npos / -1 when unset). */
    std::vector<std::size_t> fallbackModel_;
    std::vector<int> fallbackLabel_;
    std::size_t inputDim_ = 0;

    /** Private registry when the constructor got none (standalone
     *  routers in tests); Server passes its own so router instruments
     *  land in the same snapshot as queue and server ones. */
    std::unique_ptr<telemetry::MetricRegistry> metricsOwned_;
    telemetry::MetricRegistry *metrics_ = nullptr;
    std::vector<ModelInstruments> modelIns_;  ///< aligned with models_.
    telemetry::Counter *deadlineTruncated_ = nullptr;

    mutable std::mutex breakerMutex_;
    mutable std::vector<Breaker> breakers_;
};

}  // namespace homunculus::runtime
