#include "runtime/executor.hpp"

#include <algorithm>
#include <stdexcept>

namespace homunculus::runtime {

namespace {

/** Pool threads ever spawned, process-wide (spawn-count test hook). */
std::atomic<std::uint64_t> g_threads_spawned{0};

/** Set for the lifetime of a pool worker thread; nested dispatches
 *  issued while it is set run inline instead of fanning out again. */
thread_local bool t_on_worker_thread = false;

/** Growth backstop far above any sane width request, so a caller typo
 *  (jobs = rows) cannot spawn thousands of threads. */
constexpr std::size_t kMaxWorkers = 256;

std::size_t
hardwareParallelism()
{
    std::size_t hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

}  // namespace

Executor::Executor(std::size_t jobs)
    : target_(jobs != 0 ? jobs : hardwareParallelism())
{
}

Executor::~Executor()
{
    shutdown();
}

std::size_t
Executor::parallelism() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return target_;
}

std::size_t
Executor::liveWorkers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return threads_.size();
}

bool
Executor::onWorkerThread()
{
    return t_on_worker_thread;
}

std::uint64_t
Executor::threadsSpawned()
{
    return g_threads_spawned.load();
}

Executor &
Executor::processDefault()
{
    static Executor instance(0);
    return instance;
}

void
Executor::ensureWorkersLocked(std::size_t wanted)
{
    // The pool never outgrows its configured width: one dispatch with an
    // oversized jobs knob must not pin extra threads for the rest of
    // the process (the submitter is always a participant, hence -1).
    wanted = std::min(wanted, target_ > 0 ? target_ - 1 : 0);
    wanted = std::min(wanted, kMaxWorkers);
    std::uint64_t epoch = epoch_;
    while (threads_.size() < wanted) {
        threads_.emplace_back([this, epoch] { workerMain(epoch); });
        g_threads_spawned.fetch_add(1);
    }
}

void
Executor::eraseQueuedLocked(Job *job)
{
    auto it = std::find(queue_.begin(), queue_.end(), job);
    if (it != queue_.end())
        queue_.erase(it);
}

void
Executor::runJobTasks(Job &job, std::size_t slot)
{
    for (;;) {
        std::size_t task = job.next.fetch_add(1);
        if (task >= job.numTasks)
            return;
        try {
            (*job.fn)(task, slot);
        } catch (const std::exception &error) {
            job.errors[task] = error.what();
            job.failed[task] = 1;
        } catch (...) {
            job.errors[task] = "unknown exception";
            job.failed[task] = 1;
        }
    }
}

void
Executor::workerMain(std::uint64_t epoch)
{
    t_on_worker_thread = true;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workCv_.wait(lock,
                     [&] { return epoch != epoch_ || !queue_.empty(); });
        if (epoch != epoch_)
            return;  // retired by resize()/shutdown().

        Job *job = queue_.front();
        if (job->next.load() >= job->numTasks) {
            // Every task already claimed; nothing left to help with.
            queue_.pop_front();
            continue;
        }
        std::size_t slot = job->participants++;
        ++job->active;
        if (job->participants >= job->width)
            queue_.pop_front();  // dispatch is at full width.

        lock.unlock();
        runJobTasks(*job, slot);
        lock.lock();

        // The submitter owns the Job's storage and may only reclaim it
        // once active hits 0, so this decrement is this thread's last
        // touch of *job.
        if (--job->active == 0)
            doneCv_.notify_all();
    }
}

void
Executor::run(std::size_t width, std::size_t num_tasks, const TaskFn &fn)
{
    if (num_tasks == 0)
        return;
    // Clamp at the configured parallelism too: a wider request would
    // only queue participants the pool will never provide, and the
    // whole point of the shared pool is that no caller oversubscribes.
    width = std::min({resolve(width), num_tasks, parallelism()});

    // Inline path: trivial dispatches, and any dispatch issued from a
    // pool worker (nested parallel section) — fanning out again would
    // oversubscribe the machine and risk pool starvation, and the
    // contract (every task runs, lowest-index failure rethrown, worker
    // id < width) holds on one thread just as well.
    if (width <= 1 || num_tasks == 1 || t_on_worker_thread) {
        std::string first_error;
        bool saw_error = false;
        for (std::size_t task = 0; task < num_tasks; ++task) {
            try {
                fn(task, 0);
            } catch (const std::exception &error) {
                if (!saw_error) {
                    first_error = error.what();
                    saw_error = true;
                }
            } catch (...) {
                if (!saw_error) {
                    first_error = "unknown exception";
                    saw_error = true;
                }
            }
        }
        if (saw_error)
            throw std::runtime_error(first_error);
        return;
    }

    Job job;
    job.fn = &fn;
    job.numTasks = num_tasks;
    job.width = width;
    job.failed.assign(num_tasks, 0);
    job.errors.resize(num_tasks);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ensureWorkersLocked(width - 1);  // the caller is participant 0.
        queue_.push_back(&job);
    }
    // Wake only as many workers as this job can seat — notify_all here
    // would thundering-herd the whole pool onto the mutex on every
    // small serving dispatch.
    for (std::size_t helper = 1; helper < width; ++helper)
        workCv_.notify_one();

    runJobTasks(job, 0);

    {
        std::unique_lock<std::mutex> lock(mutex_);
        eraseQueuedLocked(&job);  // no new helpers may join.
        --job.active;
        doneCv_.wait(lock, [&] { return job.active == 0; });
    }

    for (std::size_t task = 0; task < num_tasks; ++task)
        if (job.failed[task])
            throw std::runtime_error(job.errors[task]);
}

void
Executor::runChunks(std::size_t width, std::size_t count,
                    std::size_t chunk_size, const common::ChunkFn &fn)
{
    if (count == 0)
        return;
    if (chunk_size == 0)
        throw std::invalid_argument("Executor::runChunks: chunk_size == 0");
    std::size_t num_chunks = (count + chunk_size - 1) / chunk_size;
    run(width, num_chunks, [&](std::size_t chunk, std::size_t worker) {
        std::size_t begin = chunk * chunk_size;
        std::size_t end = std::min(begin + chunk_size, count);
        fn(begin, end, worker);
    });
}

void
Executor::shutdown()
{
    std::vector<std::thread> retired;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++epoch_;  // workers of older epochs exit at their next wait.
        retired.swap(threads_);
    }
    workCv_.notify_all();
    for (std::thread &thread : retired)
        thread.join();
}

void
Executor::resize(std::size_t jobs)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        target_ = jobs != 0 ? jobs : hardwareParallelism();
    }
    // Restart rather than retarget in place: the old workers drain
    // whatever they are running and exit; the next dispatch respawns
    // lazily at the new width.
    shutdown();
}

}  // namespace homunculus::runtime
