/**
 * @file
 * RequestQueue: multi-lane bounded admission queue with per-lane
 * size-or-deadline batching and pluggable backpressure.
 *
 * The serving path's front door. StreamHarness replays a whole trace in
 * fixed micro-batches — fine for throughput measurement, useless under
 * live arrivals, where waiting to fill a batch makes tail latency
 * unbounded at low load and unbounded queueing makes it unbounded at
 * high load. This queue implements the standard serving answer to both
 * (the batching policy of ASAP-style operator runtimes), generalized to
 * mixed request classes:
 *
 *  - priority lanes: requests are admitted into one of N lanes, each
 *    with its own QueuePolicy (maxBatch / maxDelayUs / maxDepth). Lane
 *    0 is the most urgent. A control-plane probe lane can run a 250 µs
 *    deadline and a shallow depth while a bulk classification lane
 *    fills 1024-row batches behind it — the deadline classes the paper's
 *    deployments mix no longer share one FIFO and one delay budget.
 *  - size-or-deadline flush per lane: a lane becomes ready the moment
 *    it reaches maxBatch rows OR its oldest queued request has waited
 *    maxDelay. pop() releases the highest-priority ready lane (strict
 *    priority among ready lanes; within a lane, arrival order — which
 *    is earliest-deadline order, since a lane has one delay budget).
 *    When no lane is ready, the consumer sleeps until the earliest
 *    pending deadline across all lanes.
 *  - backpressure, three ways (BackpressureMode):
 *      kShed            — pushes beyond a lane's maxDepth are rejected
 *                         at the door (counted). The system degrades by
 *                         dropping, not by serving everyone late.
 *      kBlockWithTimeout— the producer waits up to blockTimeoutUs for
 *                         space in its lane; a consumer flush wakes
 *                         blocked producers, who then compete with
 *                         fresh arrivals for the freed space (no FIFO
 *                         guarantee among concurrent producers — a
 *                         late pusher can admit while an early one is
 *                         still waking). A push that times out is
 *                         shed.
 *      kEarlyDrop       — admission never blocks and the lane depth
 *                         still bounds memory, but additionally rows
 *                         that are already hopelessly late at flush
 *                         time (waited > dropAfterUs, default twice the
 *                         lane's maxDelay) are dropped instead of
 *                         served — under overload the engine's capacity
 *                         goes to rows that can still meet their SLO.
 *  - clean drain: close() stops admissions; pop() hands out the
 *    remaining rows (final partial batches included, highest-priority
 *    lane first) and then reports exhaustion, so shutdown loses nothing
 *    that was admitted.
 *
 * A single-lane queue in kShed mode is exactly the PR 4 queue — same
 * flush decisions, same counters — so existing callers see identical
 * behavior through the one-policy constructor.
 *
 * Thread model: any number of producers push(); consumers pop() (one is
 * typical — runtime::Server's batcher thread). All counters are
 * internally synchronized.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

namespace homunculus::runtime {

/**
 * Ceiling on every per-lane delay knob, one hour in microseconds.
 * steady_clock arithmetic is int64 nanoseconds; an unvalidated
 * maxDelayUs near 2^64 used to overflow `enqueuedAt + maxDelay` into
 * the past and turn "flush after N µs" into "flush immediately".
 * Policies clamp here at construction instead.
 */
constexpr std::uint64_t kMaxQueueDelayUs = 3'600'000'000ull;

/**
 * Floor on kEarlyDrop's drop budget, one millisecond. maxDelayUs == 0
 * is a legitimate "flush immediately" config, but doubling it would
 * make the drop budget zero too — and a zero budget drops every
 * admitted row at flush time (each was necessarily pushed before the
 * cutoff), turning the server into one that admits everything and
 * serves nothing.
 */
constexpr std::uint64_t kMinDropBudgetUs = 1000;

/** Per-lane batching + admission knobs. */
struct QueuePolicy
{
    /** Flush when this many rows are pending (the size trigger). */
    std::size_t maxBatch = 1024;
    /** Flush when the oldest pending row has waited this long (the
     *  deadline trigger), in microseconds. */
    std::uint64_t maxDelayUs = 1000;
    /** Admission bound: pushes beyond this many queued rows are shed
     *  or blocked, per the queue's BackpressureMode (0 = unbounded). */
    std::size_t maxDepth = 8192;
    /**
     * kEarlyDrop only: a row that has queued longer than this by flush
     * time is dropped instead of served. 0 picks the default of
     * 2 * maxDelayUs — the flush trigger itself puts the oldest row at
     * exactly maxDelay, so dropping at "> maxDelay" would shed every
     * steady-state deadline flush; twice the budget is unambiguously
     * late. Clamped like maxDelayUs.
     */
    std::uint64_t dropAfterUs = 0;

    /** The drop threshold kEarlyDrop actually applies (never below
     *  kMinDropBudgetUs — see its comment). */
    std::uint64_t effectiveDropAfterUs() const
    {
        std::uint64_t budget =
            dropAfterUs != 0 ? dropAfterUs : 2 * maxDelayUs;
        return budget >= kMinDropBudgetUs ? budget : kMinDropBudgetUs;
    }
};

/** What a producer does when its lane is at maxDepth. */
enum class BackpressureMode
{
    kShed,              ///< reject at the door (PR 4 behavior).
    kBlockWithTimeout,  ///< wait up to blockTimeoutUs for space.
    kEarlyDrop,         ///< shed at door + drop late rows at flush.
};

/** Printable mode name ("shed" / "block" / "early-drop"). */
const char *backpressureModeName(BackpressureMode mode);

/**
 * Notification that an *admitted* request was dropped at flush time
 * (kEarlyDrop aging out a row that blew its budget). Door-side
 * rejections don't come through here — push() already reports those
 * synchronously via Admission. @p waitedUs is how long the row sat
 * queued before it was shed.
 */
using DropFn = std::function<void(std::uint64_t ticket, std::size_t lane,
                                  std::uint64_t waitedUs)>;

/** Whole-queue configuration: one policy per priority lane. */
struct QueueConfig
{
    /** Lane policies, most urgent first. Empty behaves as one default
     *  lane. */
    std::vector<QueuePolicy> lanes;
    BackpressureMode backpressure = BackpressureMode::kShed;
    /** kBlockWithTimeout: longest a push may wait for space, in
     *  microseconds (clamped to kMaxQueueDelayUs). */
    std::uint64_t blockTimeoutUs = 10'000;
    /**
     * Optional early-drop sink, so producers can retry or degrade
     * instead of discovering drops via counters. Invoked from the
     * consumer's pop() with no queue lock held — safe to call back
     * into push() — but must still be fast: it runs on the serving
     * thread's critical path.
     */
    DropFn onDrop;
};

/** One queued inference request. */
struct Request
{
    std::uint64_t id = 0;               ///< caller-assigned ticket.
    std::size_t lane = 0;               ///< set by push().
    std::vector<double> features;       ///< one model-input row.
    std::chrono::steady_clock::time_point enqueuedAt;  ///< set by push().
};

/** Why a batch was released. */
enum class FlushReason { kSize, kDeadline, kDrain };

/** One released batch (single-lane by construction). */
struct RequestBatch
{
    std::vector<Request> requests;
    FlushReason reason = FlushReason::kSize;
    std::size_t lane = 0;
};

/** How push() disposed of a request. */
enum class Admission
{
    kAdmitted,        ///< queued; the request will be served or drained.
    kShed,            ///< rejected at maxDepth (kShed / kEarlyDrop).
    kTimedOut,        ///< waited blockTimeoutUs, still no space.
    kRejectedClosed,  ///< pushed after close().
};

/** True when the request was queued. */
inline bool
admitted(Admission a)
{
    return a == Admission::kAdmitted;
}

/** Monotonic counters (snapshot via RequestQueue::counters()). */
struct QueueCounters
{
    std::uint64_t accepted = 0;         ///< rows admitted.
    std::uint64_t shed = 0;             ///< rows rejected at maxDepth.
    std::uint64_t blockTimeouts = 0;    ///< sheds that waited first.
    std::uint64_t earlyDropped = 0;     ///< admitted rows dropped late.
    std::uint64_t rejectedClosed = 0;   ///< rows pushed after close().
    std::uint64_t sizeFlushes = 0;
    std::uint64_t deadlineFlushes = 0;
    std::uint64_t drainFlushes = 0;

    /** Field-wise sum — the single place the field list is walked, so
     *  the all-lane aggregate cannot drift when a counter is added. */
    QueueCounters &operator+=(const QueueCounters &other)
    {
        accepted += other.accepted;
        shed += other.shed;
        blockTimeouts += other.blockTimeouts;
        earlyDropped += other.earlyDropped;
        rejectedClosed += other.rejectedClosed;
        sizeFlushes += other.sizeFlushes;
        deadlineFlushes += other.deadlineFlushes;
        drainFlushes += other.drainFlushes;
        return *this;
    }
};

class RequestQueue
{
  public:
    /** Single-lane queue in kShed mode — the PR 4 front door. */
    explicit RequestQueue(QueuePolicy policy = {});
    /** Multi-lane queue; config.lanes[0] is the most urgent. */
    explicit RequestQueue(QueueConfig config);

    /**
     * Admit one request into @p lane (its enqueuedAt and lane are
     * stamped here). Returns kAdmitted when queued; otherwise the
     * request is not retained and the outcome is counted against the
     * lane. In kBlockWithTimeout mode a push to a full lane waits up to
     * blockTimeoutUs for a flush to free space (close() also wakes it,
     * to fail fast). Throws std::out_of_range for an unknown lane.
     */
    Admission push(Request request, std::size_t lane = 0);

    /**
     * Block until some lane releases a batch: maxBatch rows pending,
     * its oldest pending row maxDelay old, or close() with rows left
     * (drain; final batches may be partial). The highest-priority ready
     * lane wins; batches preserve arrival order within their lane. In
     * kEarlyDrop mode, rows older than their lane's dropAfterUs are
     * removed (and counted) before the batch is formed; a flush whose
     * rows all dropped is not returned — pop() keeps going. Returns
     * nullopt once closed and fully drained.
     */
    std::optional<RequestBatch> pop();

    /** Stop admissions; pending rows remain poppable (drain). */
    void close();

    bool closed() const;
    std::size_t depth() const;                ///< rows queued, all lanes.
    std::size_t depth(std::size_t lane) const;
    QueueCounters counters() const;           ///< sum over lanes.
    QueueCounters counters(std::size_t lane) const;

    std::size_t lanes() const { return config_.lanes.size(); }
    const QueuePolicy &policy(std::size_t lane = 0) const
    {
        return config_.lanes.at(lane);
    }
    const QueueConfig &config() const { return config_; }

  private:
    struct Lane
    {
        std::deque<Request> pending;
        QueueCounters counters;
    };

    /** One flush-time drop, recorded under the mutex and reported to
     *  config_.onDrop only after it is released. */
    struct DroppedRow
    {
        std::uint64_t ticket = 0;
        std::size_t lane = 0;
        std::uint64_t waitedUs = 0;
    };

    /** Pop up to maxBatch pending rows of @p lane as one batch,
     *  applying kEarlyDrop's late filter (recording each drop into
     *  @p dropped when onDrop is bound) and counting the flush
     *  reason; requires the mutex held. The batch can come back empty
     *  when every row had already aged out. */
    RequestBatch takeBatchLocked(std::size_t lane, FlushReason reason,
                                 std::vector<DroppedRow> &dropped);

    /** Release @p lock, deliver @p dropped to onDrop, clear it, and
     *  re-acquire — callbacks never run under the queue mutex. No-op
     *  (lock kept) when there is nothing to report. */
    void fireDropsLocked(std::unique_lock<std::mutex> &lock,
                         std::vector<DroppedRow> &dropped);

    /** Highest-priority lane that is size- or deadline-ready at
     *  @p now, or npos. Requires the mutex held. */
    std::size_t readyLaneLocked(
        std::chrono::steady_clock::time_point now,
        FlushReason &reason) const;

    QueueConfig config_;
    mutable std::mutex mutex_;
    std::condition_variable readyCv_;   ///< consumers wait here.
    std::condition_variable spaceCv_;   ///< blocked producers wait here.
    std::vector<Lane> lanes_;
    bool closed_ = false;
};

}  // namespace homunculus::runtime
