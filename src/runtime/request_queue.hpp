/**
 * @file
 * RequestQueue: multi-lane bounded admission queue with per-lane
 * size-or-deadline batching, pluggable backpressure, and a lock-free
 * submit path.
 *
 * The serving path's front door. StreamHarness replays a whole trace in
 * fixed micro-batches — fine for throughput measurement, useless under
 * live arrivals, where waiting to fill a batch makes tail latency
 * unbounded at low load and unbounded queueing makes it unbounded at
 * high load. This queue implements the standard serving answer to both
 * (the batching policy of ASAP-style operator runtimes), generalized to
 * mixed request classes:
 *
 *  - priority lanes: requests are admitted into one of N lanes, each
 *    with its own QueuePolicy (maxBatch / maxDelayUs / maxDepth). Lane
 *    0 is the most urgent. A control-plane probe lane can run a 250 µs
 *    deadline and a shallow depth while a bulk classification lane
 *    fills 1024-row batches behind it — the deadline classes the paper's
 *    deployments mix no longer share one FIFO and one delay budget.
 *  - size-or-deadline flush per lane: a lane becomes ready the moment
 *    it reaches maxBatch rows OR its oldest queued request has waited
 *    maxDelay. pop() releases the highest-priority ready lane (strict
 *    priority among ready lanes by default; QueueConfig::fairnessAgingUs
 *    lets a badly overdue lower-priority lane preempt, so sustained
 *    probe load cannot starve bulk lanes forever). When no lane is
 *    ready, the consumer sleeps until the earliest pending deadline.
 *  - backpressure, three ways (BackpressureMode):
 *      kShed            — pushes beyond a lane's maxDepth are rejected
 *                         at the door (counted). The system degrades by
 *                         dropping, not by serving everyone late.
 *      kBlockWithTimeout— the producer waits up to blockTimeoutUs for
 *                         space in its lane. Blocked producers are
 *                         granted freed space strictly in arrival
 *                         order (deterministic FIFO — a late pusher
 *                         can no longer admit while an early one is
 *                         still waking). A push that times out is shed.
 *      kEarlyDrop       — admission never blocks and the lane depth
 *                         still bounds memory, but additionally rows
 *                         that are already hopelessly late at flush
 *                         time (waited > dropAfterUs, default twice the
 *                         lane's maxDelay) are dropped instead of
 *                         served — under overload the engine's capacity
 *                         goes to rows that can still meet their SLO.
 *  - clean drain: close() stops admissions; pop() hands out the
 *    remaining rows (final partial batches included, highest-priority
 *    lane first) and then reports exhaustion, so shutdown loses nothing
 *    that was admitted.
 *
 * Submit fast path (the scale-out redesign): push() takes NO lock.
 * Admission control is an atomic per-lane depth ticket (fetch_add,
 * undone when the lane is over depth), and the row itself lands in a
 * per-lane lock-free MPSC ring (see mpsc_ring.hpp) with one CAS slot
 * reservation — so N submitting cores no longer serialize on one mutex
 * line, and submit-path p99 stays flat as producers are added. The
 * mutex + condition variables survive only at the two edges the issue
 * carves out:
 *
 *   - consumer sleep: when no lane is ready the consumer parks on
 *     readyCv_. Producers detect a sleeping consumer via a flag with a
 *     seq_cst fence on each side (store-buffering pattern: either the
 *     producer observes the flag and notifies, or the consumer's
 *     post-flag recheck observes the published row — a wakeup can
 *     never be lost), and only then touch the mutex.
 *   - blocked producers (kBlockWithTimeout): waiters register in a
 *     FIFO list under the mutex; the consumer transfers freed depth
 *     tickets to the waiters at the head of the list, in arrival
 *     order, before returning the remainder to the door.
 *
 * The consumer drains the rings into per-lane staging deques and makes
 * all flush decisions there, single-threaded — so batch composition,
 * flush accounting, and early-drop behavior are bit-identical to the
 * mutex queue's, and deterministic for a given arrival order.
 *
 * Thread model: any number of producers push(); exactly ONE consumer
 * thread pop()s (runtime::Server's batcher — the single-consumer
 * contract the MPSC ring encodes). Counters and depths are atomics,
 * readable from any thread.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "runtime/mpsc_ring.hpp"
#include "runtime/telemetry.hpp"

namespace homunculus::runtime {

/**
 * Ceiling on every per-lane delay knob, one hour in microseconds.
 * steady_clock arithmetic is int64 nanoseconds; an unvalidated
 * maxDelayUs near 2^64 used to overflow `enqueuedAt + maxDelay` into
 * the past and turn "flush after N µs" into "flush immediately".
 * Policies clamp here at construction instead.
 */
constexpr std::uint64_t kMaxQueueDelayUs = 3'600'000'000ull;

/**
 * Floor on kEarlyDrop's drop budget, one millisecond. maxDelayUs == 0
 * is a legitimate "flush immediately" config, but doubling it would
 * make the drop budget zero too — and a zero budget drops every
 * admitted row at flush time (each was necessarily pushed before the
 * cutoff), turning the server into one that admits everything and
 * serves nothing.
 */
constexpr std::uint64_t kMinDropBudgetUs = 1000;

/** Per-lane batching + admission knobs. */
struct QueuePolicy
{
    /** Flush when this many rows are pending (the size trigger). */
    std::size_t maxBatch = 1024;
    /** Flush when the oldest pending row has waited this long (the
     *  deadline trigger), in microseconds. */
    std::uint64_t maxDelayUs = 1000;
    /** Admission bound: pushes beyond this many queued rows are shed
     *  or blocked, per the queue's BackpressureMode (0 = unbounded). */
    std::size_t maxDepth = 8192;
    /**
     * kEarlyDrop only: a row that has queued longer than this by flush
     * time is dropped instead of served. 0 picks the default of
     * 2 * maxDelayUs — the flush trigger itself puts the oldest row at
     * exactly maxDelay, so dropping at "> maxDelay" would shed every
     * steady-state deadline flush; twice the budget is unambiguously
     * late. Clamped like maxDelayUs.
     */
    std::uint64_t dropAfterUs = 0;

    /** The drop threshold kEarlyDrop actually applies (never below
     *  kMinDropBudgetUs — see its comment). */
    std::uint64_t effectiveDropAfterUs() const
    {
        std::uint64_t budget =
            dropAfterUs != 0 ? dropAfterUs : 2 * maxDelayUs;
        return budget >= kMinDropBudgetUs ? budget : kMinDropBudgetUs;
    }
};

/** What a producer does when its lane is at maxDepth. */
enum class BackpressureMode
{
    kShed,              ///< reject at the door (PR 4 behavior).
    kBlockWithTimeout,  ///< wait up to blockTimeoutUs for space.
    kEarlyDrop,         ///< shed at door + drop late rows at flush.
};

/** Printable mode name ("shed" / "block" / "early-drop"). */
const char *backpressureModeName(BackpressureMode mode);

/**
 * Notification that an *admitted* request was dropped at flush time
 * (kEarlyDrop aging out a row that blew its budget). Door-side
 * rejections don't come through here — push() already reports those
 * synchronously via Admission. @p waitedUs is how long the row sat
 * queued before it was shed.
 */
using DropFn = std::function<void(std::uint64_t ticket, std::size_t lane,
                                  std::uint64_t waitedUs)>;

/** Whole-queue configuration: one policy per priority lane. */
struct QueueConfig
{
    /** Lane policies, most urgent first. Empty behaves as one default
     *  lane. */
    std::vector<QueuePolicy> lanes;
    BackpressureMode backpressure = BackpressureMode::kShed;
    /** kBlockWithTimeout: longest a push may wait for space, in
     *  microseconds (clamped to kMaxQueueDelayUs). */
    std::uint64_t blockTimeoutUs = 10'000;
    /**
     * Lane-fairness aging budget in microseconds. 0 (the default)
     * keeps strict priority among ready lanes — the historical
     * behavior, where a continuously ready lane 0 starves everyone
     * below it. When > 0, a ready lane whose oldest row is overdue
     * (past the lane's own maxDelay) by more than this budget is
     * released ahead of higher-priority ready lanes, most-overdue lane
     * first — bounded priority inversion instead of unbounded
     * starvation. Flushes won this way are tagged in
     * QueueCounters::agedFlushes (they also count under their flush
     * reason as usual).
     */
    std::uint64_t fairnessAgingUs = 0;
    /**
     * Optional early-drop sink, so producers can retry or degrade
     * instead of discovering drops via counters. Invoked from the
     * consumer's pop() with no queue lock held — safe to call back
     * into push() — but must still be fast: it runs on the serving
     * thread's critical path.
     */
    DropFn onDrop;
    /**
     * Registry the queue's per-lane counters live in ("queue.accepted"
     * {lane=N}, ...). Non-owning; must outlive the queue. nullptr (the
     * default) gives the queue a private registry, so standalone
     * queues keep working — Server passes its own registry here so
     * queue, server, and router instruments share one snapshot.
     */
    telemetry::MetricRegistry *metrics = nullptr;
};

/** One queued inference request. */
struct Request
{
    std::uint64_t id = 0;               ///< caller-assigned ticket.
    std::size_t lane = 0;               ///< set by push().
    std::vector<double> features;       ///< one model-input row.
    std::chrono::steady_clock::time_point enqueuedAt;  ///< set by push().
};

/** Why a batch was released. */
enum class FlushReason { kSize, kDeadline, kDrain };

/** One released batch (single-lane by construction). */
struct RequestBatch
{
    std::vector<Request> requests;
    FlushReason reason = FlushReason::kSize;
    std::size_t lane = 0;
};

/** How push() disposed of a request. */
enum class Admission
{
    kAdmitted,        ///< queued; the request will be served or drained.
    kShed,            ///< rejected at maxDepth (kShed / kEarlyDrop).
    kTimedOut,        ///< waited blockTimeoutUs, still no space.
    kRejectedClosed,  ///< pushed after close().
};

/** True when the request was queued. */
inline bool
admitted(Admission a)
{
    return a == Admission::kAdmitted;
}

/** Monotonic counters (snapshot via RequestQueue::counters()). */
struct QueueCounters
{
    std::uint64_t accepted = 0;         ///< rows admitted.
    std::uint64_t shed = 0;             ///< rows rejected at maxDepth.
    std::uint64_t blockTimeouts = 0;    ///< sheds that waited first.
    std::uint64_t earlyDropped = 0;     ///< admitted rows dropped late.
    std::uint64_t rejectedClosed = 0;   ///< rows pushed after close().
    std::uint64_t sizeFlushes = 0;
    std::uint64_t deadlineFlushes = 0;
    std::uint64_t drainFlushes = 0;
    /** Flushes a lower-priority lane won via fairness aging (each also
     *  counts under its flush reason above). */
    std::uint64_t agedFlushes = 0;

    /** Field-wise sum — the single place the field list is walked, so
     *  the all-lane aggregate cannot drift when a counter is added. */
    QueueCounters &operator+=(const QueueCounters &other)
    {
        accepted += other.accepted;
        shed += other.shed;
        blockTimeouts += other.blockTimeouts;
        earlyDropped += other.earlyDropped;
        rejectedClosed += other.rejectedClosed;
        sizeFlushes += other.sizeFlushes;
        deadlineFlushes += other.deadlineFlushes;
        drainFlushes += other.drainFlushes;
        agedFlushes += other.agedFlushes;
        return *this;
    }
};

class RequestQueue
{
  public:
    /** Single-lane queue in kShed mode — the PR 4 front door. */
    explicit RequestQueue(QueuePolicy policy = {});
    /** Multi-lane queue; config.lanes[0] is the most urgent. */
    explicit RequestQueue(QueueConfig config);

    /**
     * Admit one request into @p lane (its enqueuedAt and lane are
     * stamped here). Returns kAdmitted when queued; otherwise the
     * request is not retained and the outcome is counted against the
     * lane. Lock-free in kShed/kEarlyDrop modes and whenever the lane
     * has space. In kBlockWithTimeout mode a push to a full lane waits
     * up to blockTimeoutUs for a flush to free space — waiters admit
     * in arrival order — and close() wakes it, to fail fast. Throws
     * std::out_of_range for an unknown lane.
     */
    Admission push(Request request, std::size_t lane = 0);

    /**
     * Block until some lane releases a batch: maxBatch rows pending,
     * its oldest pending row maxDelay old, or close() with rows left
     * (drain; final batches may be partial). The highest-priority ready
     * lane wins (subject to fairness aging — see QueueConfig); batches
     * preserve arrival order within their lane. In kEarlyDrop mode,
     * rows older than their lane's dropAfterUs are removed (and
     * counted) before the batch is formed; a flush whose rows all
     * dropped is not returned — pop() keeps going. Returns nullopt
     * once closed and fully drained. Single consumer thread only.
     */
    std::optional<RequestBatch> pop();

    /** Stop admissions; pending rows remain poppable (drain). */
    void close();

    bool closed() const;
    std::size_t depth() const;                ///< rows queued, all lanes.
    std::size_t depth(std::size_t lane) const;
    QueueCounters counters() const;           ///< sum over lanes.
    QueueCounters counters(std::size_t lane) const;

    std::size_t lanes() const { return config_.lanes.size(); }
    const QueuePolicy &policy(std::size_t lane = 0) const
    {
        return config_.lanes.at(lane);
    }
    const QueueConfig &config() const { return config_; }

    /** The registry holding this queue's instruments (the config's, or
     *  the queue's private one when none was supplied). */
    telemetry::MetricRegistry &metrics() { return *metrics_; }

  private:
    /** The queue's per-lane instruments, resolved once at construction
     *  from the telemetry registry ("queue.accepted" {lane=N}, ...);
     *  updates are the same relaxed-atomic adds the old embedded
     *  counters did, and counters() folds the registry values back
     *  into the plain QueueCounters view struct. */
    struct LaneCounters
    {
        telemetry::Counter *accepted = nullptr;
        telemetry::Counter *shed = nullptr;
        telemetry::Counter *blockTimeouts = nullptr;
        telemetry::Counter *earlyDropped = nullptr;
        telemetry::Counter *rejectedClosed = nullptr;
        telemetry::Counter *sizeFlushes = nullptr;
        telemetry::Counter *deadlineFlushes = nullptr;
        telemetry::Counter *drainFlushes = nullptr;
        telemetry::Counter *agedFlushes = nullptr;

        /** Resolve every counter for @p lane in @p registry. */
        void bind(telemetry::MetricRegistry &registry, std::size_t lane);

        QueueCounters snapshot() const;
    };

    /** One producer parked in kBlockWithTimeout mode, queued on the
     *  lane's FIFO waiter list (guarded by mutex_). The consumer
     *  transfers a freed depth ticket by setting granted. */
    struct BlockedWaiter
    {
        bool granted = false;
    };

    struct Lane
    {
        /** The lock-free admission path: producers publish here. */
        std::unique_ptr<MpscRing<Request>> ring;
        /** Consumer-private: rows drained from the ring, awaiting a
         *  flush decision. Never touched by producers. */
        std::deque<Request> staged;
        /** FIFO of blocked producers (kBlockWithTimeout), arrival
         *  order; guarded by mutex_. */
        std::deque<BlockedWaiter *> waiters;
        /**
         * Admission tickets: one per row between door and flush (ring
         * + staged + block-granted-but-not-yet-published). fetch_add
         * at the door, undone when over maxDepth — so shed decisions
         * are exact even under contention, and the ring (sized >=
         * maxDepth) can never be lapped by admitted rows.
         */
        std::atomic<std::size_t> depthTickets{0};
        LaneCounters counters;
    };

    /** One flush-time drop, recorded while forming a batch and
     *  reported to config_.onDrop afterwards (never under any lock). */
    struct DroppedRow
    {
        std::uint64_t ticket = 0;
        std::size_t lane = 0;
        std::uint64_t waitedUs = 0;
    };

    /** Clamp knobs + materialize the default lane (shared by both
     *  constructors; runs before lanes_ is sized off the config). */
    static QueueConfig normalizeConfig(QueueConfig config);

    /** Stamp @p request and publish it into @p lane's ring. Spins
     *  (with consumer wakeups) on the transient-full window, then
     *  counts the admission and wakes a sleeping consumer. */
    void publishAdmitted(std::size_t lane, Request request);

    /** kBlockWithTimeout slow path: join the lane's FIFO waiter list
     *  and wait for a transferred ticket, a timeout, or close(). */
    Admission pushBlocking(Request request, std::size_t lane);

    /** Return @p freed depth tickets to @p lane. In block mode the
     *  head waiters get them first (FIFO grants, under the mutex);
     *  everything ungranted goes back to the door. */
    void releaseSpace(std::size_t lane, std::size_t freed);

    /** Notify the consumer iff it parked (seq_cst-fence handshake
     *  against the sleeping_ flag — see the file comment). */
    void wakeConsumer();

    /** Move every published row from the rings into the staging
     *  deques (consumer only). */
    void drainRings();

    /** True when no lane's ring has a poppable row (consumer only). */
    bool ringsEmpty() const;

    /** Outstanding depth tickets across all lanes. */
    std::size_t totalTickets() const;

    /** The staged lane pop() should release at @p now, or kNoLane:
     *  highest-priority ready lane, preempted by the most-overdue
     *  starving lane when fairness aging is on (@p aged reports the
     *  preemption so the flush can be tagged). Consumer only. */
    std::size_t readyLane(std::chrono::steady_clock::time_point now,
                          FlushReason &reason, bool &aged) const;

    /** Form a batch from @p lane's staging deque: early-drop filter,
     *  up to maxBatch rows, flush accounting, ticket release.
     *  Consumer only; can come back empty when every row aged out. */
    RequestBatch takeBatch(std::size_t lane, FlushReason reason,
                           bool aged, std::vector<DroppedRow> &dropped);

    /** Deliver @p dropped to onDrop (no lock held) and clear it. */
    void fireDrops(std::vector<DroppedRow> &dropped);

    /** Park until a producer or close() signals, or until @p earliest
     *  (the soonest staged deadline) when one exists. */
    void sleepUntilWork(bool any_pending,
                        std::chrono::steady_clock::time_point earliest);

    QueueConfig config_;
    /** Private registry when the config supplied none. Declared before
     *  lanes_ so lane counters can bind to it during construction. */
    std::unique_ptr<telemetry::MetricRegistry> metricsOwned_;
    telemetry::MetricRegistry *metrics_ = nullptr;
    std::vector<Lane> lanes_;
    std::atomic<bool> closed_{false};
    /** True while the consumer is parked on readyCv_ — the producer
     *  side of the lost-wakeup handshake. */
    std::atomic<bool> sleeping_{false};
    /** Guards: consumer sleep transitions, waiter lists, block-mode
     *  ticket grants. Never taken on the lock-free admit path. */
    mutable std::mutex mutex_;
    std::condition_variable readyCv_;   ///< the consumer waits here.
    std::condition_variable spaceCv_;   ///< blocked producers wait here.
};

}  // namespace homunculus::runtime
