/**
 * @file
 * RequestQueue: bounded admission queue with size-or-deadline batching.
 *
 * The serving path's front door. StreamHarness replays a whole trace in
 * fixed micro-batches — fine for throughput measurement, useless under
 * live arrivals, where waiting to fill a batch makes tail latency
 * unbounded at low load and unbounded queueing makes it unbounded at
 * high load. This queue implements the standard serving answer to both
 * (the batching policy of ASAP-style operator runtimes):
 *
 *  - size-or-deadline flush: a batch is released the moment it reaches
 *    maxBatch rows OR the oldest queued request has waited maxDelay,
 *    whichever comes first. Deadline flushes bound the queueing part of
 *    p99 by ~maxDelay; size flushes keep throughput at high load.
 *  - bounded-depth admission control: once maxDepth rows are queued,
 *    further pushes are shed (counted, rejected at the door) instead of
 *    growing an unbounded backlog — the system degrades by dropping,
 *    not by serving everyone arbitrarily late.
 *  - clean drain: close() stops admissions; pop() hands out the
 *    remaining rows (final partial batch included) and then reports
 *    exhaustion, so shutdown loses nothing that was admitted.
 *
 * Thread model: any number of producers push(); consumers pop() (one is
 * typical — runtime::Server's batcher thread). All counters are
 * internally synchronized.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace homunculus::runtime {

/** Batching + admission knobs. */
struct QueuePolicy
{
    /** Flush when this many rows are pending (the size trigger). */
    std::size_t maxBatch = 1024;
    /** Flush when the oldest pending row has waited this long (the
     *  deadline trigger), in microseconds. */
    std::uint64_t maxDelayUs = 1000;
    /** Admission bound: pushes beyond this many queued rows are shed
     *  (0 = unbounded). */
    std::size_t maxDepth = 8192;
};

/** One queued inference request. */
struct Request
{
    std::uint64_t id = 0;               ///< caller-assigned ticket.
    std::vector<double> features;       ///< one model-input row.
    std::chrono::steady_clock::time_point enqueuedAt;  ///< set by push().
};

/** Why a batch was released. */
enum class FlushReason { kSize, kDeadline, kDrain };

/** One released batch. */
struct RequestBatch
{
    std::vector<Request> requests;
    FlushReason reason = FlushReason::kSize;
};

/** Monotonic counters (snapshot via RequestQueue::counters()). */
struct QueueCounters
{
    std::uint64_t accepted = 0;         ///< rows admitted.
    std::uint64_t shed = 0;             ///< rows rejected at maxDepth.
    std::uint64_t rejectedClosed = 0;   ///< rows pushed after close().
    std::uint64_t sizeFlushes = 0;
    std::uint64_t deadlineFlushes = 0;
    std::uint64_t drainFlushes = 0;
};

class RequestQueue
{
  public:
    explicit RequestQueue(QueuePolicy policy = {});

    /**
     * Admit one request (its enqueuedAt is stamped here). Returns false
     * — and counts the row as shed/rejected — when the queue is at
     * maxDepth or already closed; the request is not retained.
     */
    bool push(Request request);

    /**
     * Block until the policy releases a batch: maxBatch rows pending,
     * the oldest pending row maxDelay old, or close() with rows left
     * (drain; the final batch may be partial). Batches preserve arrival
     * order. Returns nullopt once closed and fully drained.
     */
    std::optional<RequestBatch> pop();

    /** Stop admissions; pending rows remain poppable (drain). */
    void close();

    bool closed() const;
    std::size_t depth() const;        ///< rows currently queued.
    QueueCounters counters() const;

    const QueuePolicy &policy() const { return policy_; }

  private:
    /** Pop up to maxBatch pending rows as one batch, counting the
     *  flush reason; requires the mutex held and pending_ non-empty. */
    RequestBatch takeBatchLocked(FlushReason reason);

    QueuePolicy policy_;
    mutable std::mutex mutex_;
    std::condition_variable readyCv_;   ///< consumers wait here.
    std::deque<Request> pending_;
    bool closed_ = false;
    QueueCounters counters_;
};

}  // namespace homunculus::runtime
