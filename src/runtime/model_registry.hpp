/**
 * @file
 * ModelRegistry: named, versioned, hot-swappable compiled models.
 *
 * runtime::Server owned exactly one ExecutablePlan per process — fine
 * for a demo, useless for the paper's flagship deployment story of
 * co-resident and chained per-app models sharing one data plane. The
 * registry is the model store behind that fleet: it loads
 * `homunculus-ir` v3 artifacts (or in-memory ModelIrs) under a caller
 * chosen name, compiles each into an InferenceEngine once, and hands
 * them out as immutable, reference-counted **epochs**:
 *
 *  - versioned: repeated loads under one name get monotonically
 *    increasing versions (v1, v2, ...). Every version of a name must be
 *    a drop-in replacement — same input width, same label space — so a
 *    swap can never hand the router a plan the admitted requests don't
 *    fit.
 *  - atomic hot swap: swap(name, version) flips which version active()
 *    returns, in one mutex-protected step. Consumers that pinned the
 *    old epoch (a batch mid-execution) keep executing exactly the plan
 *    they started with; consumers that pin after the swap get the new
 *    one. There is no in-between state: a batch observes one plan
 *    version, never a mix.
 *  - unload-when-idle retirement: an old version stays loaded (cheap —
 *    a compiled plan, not a training set) until unloadIdle() finds it
 *    both inactive and unpinned, or unload() force-removes it from the
 *    table — in which case in-flight pins still keep the epoch alive
 *    until the last one drops (shared_ptr semantics); only the *table
 *    entry* goes away immediately.
 *
 * Scaler provenance rides the artifact: a v3 model with stored moments
 * gets its training-time StandardScaler attached to the epoch; a model
 * recorded as raw-trained (or a legacy artifact) gets none. The
 * registry never refits statistics on traffic — it is artifact-driven
 * by design (the 3am control plane installs what the compiler shipped).
 *
 * Thread model: every method is safe to call from any thread. active()
 * and version() return shared_ptrs whose pointees are immutable after
 * load, so lookups race with swaps only on the pointer flip, which the
 * registry mutex serializes.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ml/preprocess.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/telemetry.hpp"

namespace homunculus::runtime {

/**
 * One immutable loaded model version: the compiled engine plus the
 * artifact's scaler provenance. Pinning an epoch (holding the
 * shared_ptr) guarantees the plan it wraps outlives the pin, swaps and
 * unloads notwithstanding.
 */
struct ModelEpoch
{
    std::string name;
    std::uint64_t version = 0;
    InferenceEngine engine;
    /** Training-time scaler from the artifact (nullopt = serve raw). */
    std::optional<ml::StandardScaler> scaler;

    ModelEpoch(std::string name_, std::uint64_t version_,
               InferenceEngine engine_,
               std::optional<ml::StandardScaler> scaler_)
        : name(std::move(name_)), version(version_),
          engine(std::move(engine_)), scaler(std::move(scaler_))
    {
    }

    std::size_t inputDim() const { return engine.plan().inputDim(); }
    int numClasses() const { return engine.plan().numClasses(); }
};

class ModelRegistry
{
  public:
    /** @param engine_options execution policy every loaded model's
     *  engine is built with (jobs, inline threshold, pool).
     *  @param metrics registry the control-plane event counters land
     *  in ("registry.loads" {model=name}, .swaps, .pins, .unloads).
     *  nullptr (the default) uses the process-global registry — model
     *  lifecycles are control-plane events with no per-shard owner. */
    explicit ModelRegistry(EngineOptions engine_options = {},
                           telemetry::MetricRegistry *metrics = nullptr);

    ModelRegistry(const ModelRegistry &) = delete;
    ModelRegistry &operator=(const ModelRegistry &) = delete;

    /**
     * Compile @p model and install it under @p name. The first load of
     * a name becomes version 1 and active; later loads get the next
     * version and (by default) stay inactive until swap() promotes
     * them, so loading is never itself a traffic shift.
     * @returns the assigned version.
     * @throws std::runtime_error when the model is invalid or is not a
     *         drop-in for the name (input width / class count differ
     *         from version 1).
     *
     * @param engine_options per-load execution policy override: a
     *        probe-lane model can reserve its own executor / shard
     *        thresholds (or pin scalar kernels) while the rest of the
     *        fleet keeps the registry-wide defaults. nullopt = the
     *        registry's shared options. The override is per *version*:
     *        reloading a name can change its policy along with its
     *        weights.
     */
    std::uint64_t load(const std::string &name, const ir::ModelIr &model,
                       bool activate_if_first = true,
                       const std::optional<EngineOptions>
                           &engine_options = std::nullopt);

    /** load() from a serialized `homunculus-ir` artifact file. */
    std::uint64_t loadFile(const std::string &name,
                           const std::string &path,
                           bool activate_if_first = true,
                           const std::optional<EngineOptions>
                               &engine_options = std::nullopt);

    /**
     * Atomically make @p version the one active() returns for @p name.
     * In-flight consumers keep the epoch they pinned; the flip affects
     * only future active() calls. Swapping to the already-active
     * version is a no-op.
     * @returns the previously active version.
     * @throws std::out_of_range for an unknown name or version.
     */
    std::uint64_t swap(const std::string &name, std::uint64_t version);

    /** The active epoch of @p name (pin it for the whole batch).
     *  @throws std::out_of_range for an unknown name. */
    std::shared_ptr<const ModelEpoch> active(const std::string &name) const;

    /** A specific loaded version (nullptr when not loaded — e.g.
     *  already unloaded; unknown names also yield nullptr). */
    std::shared_ptr<const ModelEpoch> version(const std::string &name,
                                              std::uint64_t version) const;

    /** @throws std::out_of_range for an unknown name. */
    std::uint64_t activeVersion(const std::string &name) const;

    bool contains(const std::string &name) const;
    std::vector<std::string> names() const;             ///< sorted.
    std::vector<std::uint64_t> versions(const std::string &name) const;

    /**
     * Retire every version of @p name that is neither active nor pinned
     * by anyone outside the registry (use_count == 1). Safe to call on
     * a schedule; a version pinned by an in-flight batch is skipped and
     * can be collected on a later sweep.
     * @returns how many versions were unloaded.
     */
    std::size_t unloadIdle(const std::string &name);

    /**
     * Force-remove one version from the table now. In-flight pins keep
     * the epoch alive until released — only future version() lookups
     * stop finding it. The active version cannot be unloaded (swap
     * first); @returns false when the version was not loaded.
     * @throws std::invalid_argument when @p version is active.
     */
    bool unload(const std::string &name, std::uint64_t version);

    const EngineOptions &engineOptions() const { return engineOptions_; }

  private:
    struct Entry
    {
        std::map<std::uint64_t, std::shared_ptr<const ModelEpoch>> loaded;
        std::uint64_t active = 0;
        std::uint64_t nextVersion = 1;
        std::size_t inputDim = 0;  ///< pinned by the first load.
        int numClasses = 0;
    };

    const Entry &entryFor(const std::string &name) const;

    /** Bump "registry.<event>" {model=name} in metrics_. */
    void count(const char *event, const std::string &name) const;

    EngineOptions engineOptions_;
    telemetry::MetricRegistry *metrics_ = nullptr;
    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
};

}  // namespace homunculus::runtime
