#include "runtime/fault_injector.hpp"

#include <cstdlib>

#include "common/string_util.hpp"
#include "runtime/telemetry.hpp"

namespace homunculus::runtime::faults {

namespace {

/** splitmix64: the standard 64-bit finalizer — every (seed, counter)
 *  pair maps to an independent-looking 64-bit value, which is all a
 *  per-check Bernoulli draw needs. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Uniform [0, 1) from the hash's top 53 bits, so rate 1.0 always
 *  fires and rate 0.0 never does. */
double
unitDouble(std::uint64_t hash)
{
    return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector &
FaultInjector::global()
{
    static FaultInjector *instance = [] {
        auto *injector = new FaultInjector();
        if (const char *spec = std::getenv("HOMUNCULUS_FAULTS"))
            injector->armSpec(spec);
        return injector;
    }();
    return *instance;
}

std::vector<FaultSite>
FaultInjector::parseSpec(const std::string &text)
{
    std::vector<FaultSite> sites;
    for (const std::string &field : common::split(text, ',')) {
        std::string entry = common::trim(field);
        if (entry.empty())
            continue;
        std::vector<std::string> parts = common::split(entry, ':');
        if (parts.size() < 2 || parts.size() > 3)
            throw std::runtime_error(
                "faults: spec entries are SITE:RATE[:SEED], got '" +
                entry + "'");
        FaultSite site;
        site.site = common::trim(parts[0]);
        if (site.site.empty())
            throw std::runtime_error(
                "faults: empty site name in '" + entry + "'");
        try {
            std::size_t consumed = 0;
            site.rate = std::stod(parts[1], &consumed);
            if (consumed != parts[1].size())
                throw std::invalid_argument(parts[1]);
        } catch (const std::exception &) {
            throw std::runtime_error(
                "faults: bad rate '" + parts[1] + "' in '" + entry +
                "'");
        }
        if (!(site.rate >= 0.0 && site.rate <= 1.0))
            throw std::runtime_error(
                "faults: rate must be in [0, 1], got '" + parts[1] +
                "'");
        if (parts.size() == 3) {
            try {
                if (parts[2].empty() ||
                    parts[2].find('-') != std::string::npos)
                    throw std::invalid_argument(parts[2]);
                std::size_t consumed = 0;
                site.seed = std::stoull(parts[2], &consumed);
                if (consumed != parts[2].size())
                    throw std::invalid_argument(parts[2]);
            } catch (const std::exception &) {
                throw std::runtime_error(
                    "faults: bad seed '" + parts[2] + "' in '" + entry +
                    "'");
            }
        }
        sites.push_back(std::move(site));
    }
    return sites;
}

void
FaultInjector::arm(const std::string &site, double rate,
                   std::uint64_t seed)
{
    if (site.empty())
        throw std::runtime_error("faults: empty site name");
    if (!(rate >= 0.0 && rate <= 1.0))
        throw std::runtime_error("faults: rate must be in [0, 1]");
    std::lock_guard<std::mutex> lock(mutex_);
    SiteState state;
    state.rate = rate;
    state.seed = seed;
    sites_[site] = state;
    armed_.store(true, std::memory_order_release);
}

void
FaultInjector::armSpec(const std::string &spec)
{
    for (const FaultSite &site : parseSpec(spec))
        arm(site.site, site.rate, site.seed);
}

void
FaultInjector::disarm()
{
    std::lock_guard<std::mutex> lock(mutex_);
    sites_.clear();
    armed_.store(false, std::memory_order_release);
}

void
FaultInjector::disarm(const std::string &site)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sites_.erase(site);
    armed_.store(!sites_.empty(), std::memory_order_release);
}

bool
FaultInjector::shouldFail(const char *site)
{
    if (!armed())
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    if (it == sites_.end())
        return false;
    SiteState &state = it->second;
    // The decision is a pure function of (seed, check ordinal): check
    // sequences replay identically run-to-run, which is what makes
    // "the same batches fail" a testable property.
    std::uint64_t draw = splitmix64(state.seed + state.checks);
    ++state.checks;
    bool fire = unitDouble(draw) < state.rate;
    if (fire) {
        ++state.fired;
        // Mirror into the global telemetry registry so stats dumps
        // carry the injection record. The counter never resets (it is
        // cumulative across re-arms); the deterministic per-site
        // (seed, checks) sequence above is untouched.
        telemetry::MetricRegistry::global()
            .counter("faults.fired", {{"site", site}})
            .add();
    }
    return fire;
}

std::uint64_t
FaultInjector::fired(const std::string &site) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    return it != sites_.end() ? it->second.fired : 0;
}

std::uint64_t
FaultInjector::checked(const std::string &site) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    return it != sites_.end() ? it->second.checks : 0;
}

std::vector<FaultSite>
FaultInjector::sites() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<FaultSite> out;
    out.reserve(sites_.size());
    for (const auto &[name, state] : sites_) {
        FaultSite site;
        site.site = name;
        site.rate = state.rate;
        site.seed = state.seed;
        out.push_back(std::move(site));
    }
    return out;
}

}  // namespace homunculus::runtime::faults
