/**
 * @file
 * QuantCache: per-format quantized views of one feature matrix.
 *
 * Candidate scoring quantizes the spec's test partition on every
 * Platform::evaluate call — thousands of pow()-free but still O(rows x
 * cols) conversions per search, all identical whenever candidates share
 * a FixedPointFormat (today every family lowers to Q8.8, so a whole
 * search re-quantizes one matrix hundreds of times). A QuantCache binds
 * to one matrix and memoizes its ir::QuantizedMatrix per format.
 *
 * Thread-safety: get() is safe from concurrent family-search workers;
 * the first caller for a format quantizes under the lock, later callers
 * get the cached reference (std::map nodes are address-stable, so the
 * reference outlives any further inserts). Bit-exactness is guaranteed
 * by construction — QuantizedMatrix uses the same quantizeInto kernel
 * the plan uses internally — and pinned by a differential test.
 */
#pragma once

#include <map>
#include <mutex>
#include <utility>

#include "ir/exec_plan.hpp"
#include "runtime/fault_injector.hpp"

namespace homunculus::runtime {

/** Format-keyed quantization cache bound to one feature matrix. */
class QuantCache
{
  public:
    /** Bind to @p x; the matrix must outlive the cache and not change. */
    explicit QuantCache(const math::Matrix &x) : x_(&x) {}

    QuantCache(const QuantCache &) = delete;
    QuantCache &operator=(const QuantCache &) = delete;

    /** Whether @p x is the matrix this cache is bound to (by identity —
     *  callers pass the same partition object to every evaluate). */
    bool covers(const math::Matrix &x) const { return &x == x_; }

    /** The quantized view for @p format (computed on first use). */
    const ir::QuantizedMatrix &get(
        const common::FixedPointFormat &format) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto key = std::make_pair(format.integerBits(), format.fracBits());
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            // Injected quantization failure (global injector only) on
            // the miss path — a cache hit cannot fail, like any other
            // memoized read. The throw propagates to the family-search
            // worker, which folds it into the spec's Status.
            faults::FaultInjector::global().maybe(
                faults::kSiteCacheQuantize);
            it = cache_.emplace(key, ir::QuantizedMatrix(*x_, format))
                     .first;
        }
        return it->second;
    }

    /** Number of distinct formats quantized so far. */
    std::size_t entries() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return cache_.size();
    }

  private:
    const math::Matrix *x_;
    mutable std::mutex mutex_;
    /** Keyed by (integerBits, fracBits). */
    mutable std::map<std::pair<int, int>, ir::QuantizedMatrix> cache_;
};

}  // namespace homunculus::runtime
