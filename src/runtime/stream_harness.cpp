#include "runtime/stream_harness.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/string_util.hpp"
#include "math/stats.hpp"

namespace homunculus::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

StreamHarness::StreamHarness(InferenceEngine engine,
                             net::FeatureExtractor extractor,
                             std::optional<ml::StandardScaler> scaler,
                             StreamConfig config)
    : engine_(std::move(engine)), extractor_(std::move(extractor)),
      scaler_(std::move(scaler)), config_(config)
{
    if (config_.batchRows == 0)
        config_.batchRows = 1;
    if (engine_.plan().inputDim() != net::kNumTcFeatures)
        throw std::runtime_error(common::format(
            "StreamHarness: model expects %zu features but the packet "
            "extractor emits %zu",
            engine_.plan().inputDim(), net::kNumTcFeatures));
    if (scaler_ && !scaler_->fitted())
        throw std::runtime_error("StreamHarness: scaler is not fitted");
}

StreamStats
StreamHarness::replay(const std::vector<net::RawPacket> &packets) const
{
    return replayParsed(packets, packets.size());
}

StreamStats
StreamHarness::replayWire(
    const std::vector<std::vector<std::uint8_t>> &frames) const
{
    std::vector<net::RawPacket> packets;
    packets.reserve(frames.size());
    for (const auto &frame : frames) {
        if (auto packet = net::parse(frame))
            packets.push_back(std::move(*packet));
    }
    return replayParsed(packets, frames.size());
}

StreamStats
StreamHarness::replayParsed(const std::vector<net::RawPacket> &packets,
                            std::size_t offered) const
{
    StreamStats stats;
    stats.packetsOffered = offered;
    stats.packetsParsed = packets.size();

    const std::size_t dim = engine_.plan().inputDim();
    const std::size_t batch_rows = config_.batchRows;
    const std::size_t n = packets.size();
    stats.verdicts.resize(n);
    if (n == 0)
        return stats;
    const std::size_t num_batches = (n + batch_rows - 1) / batch_rows;
    stats.batches = num_batches;

    // Two micro-batch buffers: the producer extracts into one while the
    // consumer infers from the other. A slot is owned by the producer
    // while !full and by the consumer while full; ownership flips under
    // the mutex, so buffers are handed off, never shared.
    struct Slot
    {
        math::Matrix features;
        std::size_t rows = 0;
        bool full = false;
    };
    Slot slots[2];
    slots[0].features = math::Matrix(batch_rows, dim);
    slots[1].features = math::Matrix(batch_rows, dim);

    const double *means = nullptr;
    const double *stddevs = nullptr;
    if (scaler_) {
        means = scaler_->means().data();
        stddevs = scaler_->stddevs().data();
    }

    auto extractBatch = [&](std::size_t b, Slot &slot) {
        std::size_t row_base = b * batch_rows;
        std::size_t rows = std::min(batch_rows, n - row_base);
        // The final (drain) batch is smaller; shrink the buffer so the
        // engine sees exactly the remaining rows.
        if (rows != slot.features.rows())
            slot.features = math::Matrix(rows, dim);
        for (std::size_t i = 0; i < rows; ++i) {
            std::vector<double> features =
                extractor_.extract(packets[row_base + i]);
            double *row = slot.features.rowPtr(i);
            for (std::size_t c = 0; c < dim; ++c) {
                double value = features[c];
                if (means != nullptr)
                    value = (value - means[c]) / stddevs[c];
                row[c] = value;
            }
        }
        slot.rows = rows;
    };

    std::vector<double> latencies_us;
    latencies_us.reserve(num_batches);
    auto inferBatch = [&](std::size_t b, Slot &slot) {
        auto started = Clock::now();
        engine_.run(slot.features,
                    stats.verdicts.data() + b * batch_rows);
        double seconds = secondsSince(started);
        stats.inferSeconds += seconds;
        stats.rowsClassified += slot.rows;
        latencies_us.push_back(seconds * 1e6);
    };

    auto wall_start = Clock::now();
    if (!config_.pipelined) {
        Slot &slot = slots[0];
        for (std::size_t b = 0; b < num_batches; ++b) {
            auto started = Clock::now();
            extractBatch(b, slot);
            stats.extractSeconds += secondsSince(started);
            inferBatch(b, slot);
        }
    } else {
        std::mutex mutex;
        std::condition_variable cv;
        bool stop = false;
        std::exception_ptr producer_error;
        double extract_seconds = 0.0;

        std::thread producer([&] {
            try {
                for (std::size_t b = 0; b < num_batches; ++b) {
                    Slot &slot = slots[b & 1];
                    {
                        std::unique_lock<std::mutex> lock(mutex);
                        cv.wait(lock,
                                [&] { return !slot.full || stop; });
                        if (stop)
                            return;
                    }
                    auto started = Clock::now();
                    extractBatch(b, slot);
                    extract_seconds += secondsSince(started);
                    {
                        std::lock_guard<std::mutex> lock(mutex);
                        slot.full = true;
                    }
                    cv.notify_all();
                }
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    producer_error = std::current_exception();
                    stop = true;
                }
                cv.notify_all();
            }
        });

        for (std::size_t b = 0; b < num_batches; ++b) {
            Slot &slot = slots[b & 1];
            {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock, [&] { return slot.full || stop; });
                if (stop)
                    break;
            }
            inferBatch(b, slot);
            {
                std::lock_guard<std::mutex> lock(mutex);
                slot.full = false;
            }
            cv.notify_all();
        }
        {
            // Consumer-side exit (error case): release a waiting producer.
            std::lock_guard<std::mutex> lock(mutex);
            stop = true;
        }
        cv.notify_all();
        producer.join();
        stats.extractSeconds = extract_seconds;
        if (producer_error)
            std::rethrow_exception(producer_error);
    }
    stats.wallSeconds = secondsSince(wall_start);

    stats.rowsPerSec = stats.wallSeconds > 0.0
                           ? static_cast<double>(stats.rowsClassified) /
                                 stats.wallSeconds
                           : 0.0;
    stats.p50BatchLatencyUs = math::percentileNearestRank(latencies_us,
                                                          0.50);
    stats.p99BatchLatencyUs = math::percentileNearestRank(latencies_us,
                                                          0.99);
    return stats;
}

}  // namespace homunculus::runtime
