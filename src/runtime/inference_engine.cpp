#include "runtime/inference_engine.hpp"

#include <algorithm>

#include "kernels/kernel_dispatch.hpp"
#include "runtime/executor.hpp"

namespace homunculus::runtime {

namespace {

/** Smallest shard worth a dispatch; keeps stitching overhead trivial. */
constexpr std::size_t kMinShardRows = 256;

Executor &
poolFor(const EngineOptions &options)
{
    return options.executor != nullptr ? *options.executor
                                       : Executor::processDefault();
}

/**
 * Shard [0, rows) over the pool and execute via @p run_range, which is
 * ExecutablePlan::runRange bound to either a double or a pre-quantized
 * matrix. One Scratch arena per worker, reused across every shard that
 * worker steals; each shard writes only its own labels slice, so the
 * output is row-ordered no matter how chunks get scheduled.
 */
template <typename RunRange>
void
runSharded(Executor &pool, std::size_t jobs, std::size_t rows,
           std::size_t shard_rows, const RunRange &run_range)
{
    std::vector<ir::ExecutablePlan::Scratch> scratches(jobs);
    pool.runChunks(
        jobs, rows, shard_rows,
        [&](std::size_t begin, std::size_t end, std::size_t worker) {
            run_range(begin, end, scratches[worker]);
        });
}

}  // namespace

InferenceEngine::InferenceEngine(ir::ExecutablePlan plan,
                                 EngineOptions options)
    : plan_(std::move(plan)), options_(options)
{
    // The engine owns its plan copy, so pinning the kernel target here
    // never affects other consumers of the same compiled model.
    if (options_.forceScalarKernels)
        plan_.forceKernelTarget(kernels::KernelTarget::kScalar);
    // Per-target throughput counters in the global registry. A
    // scalar-pinned engine never touches KernelDispatch (its label is
    // known); everything else resolves the active target — which any
    // run() would have resolved anyway.
    const char *target =
        options_.forceScalarKernels
            ? kernels::kernelTargetName(kernels::KernelTarget::kScalar)
            : kernels::kernelTargetName(kernels::KernelDispatch::active());
    telemetry::MetricRegistry &reg = telemetry::MetricRegistry::global();
    batchesCounter_ = &reg.counter("engine.batches", {{"target", target}});
    rowsCounter_ = &reg.counter("engine.rows", {{"target", target}});
}

InferenceEngine
InferenceEngine::fromModel(const ir::ModelIr &model, EngineOptions options)
{
    return InferenceEngine(ir::ExecutablePlan::compile(model), options);
}

std::size_t
InferenceEngine::jobs() const
{
    return poolFor(options_).resolve(options_.jobs);
}

std::size_t
InferenceEngine::shardRowsFor(std::size_t rows) const
{
    // Aim for ~4 shards per worker so work-stealing can even out rows
    // whose models traverse differently (trees), bounded below so a
    // dispatch always amortizes and above so shards stay cache-sized.
    // A caller-set maxShardRows is a hard ceiling: it wins over the
    // dispatch-amortization floor when the two conflict.
    std::size_t workers = jobs();
    std::size_t target = (rows + workers * 4 - 1) / (workers * 4);
    std::size_t max_shard = std::max<std::size_t>(1, options_.maxShardRows);
    return std::clamp(target, std::min(kMinShardRows, max_shard),
                      max_shard);
}

void
InferenceEngine::run(const math::Matrix &x, int *labels) const
{
    batchesCounter_->add();
    rowsCounter_->add(x.rows());
    std::size_t workers = jobs();
    if (workers <= 1 || x.rows() < options_.minRowsToShard) {
        ir::ExecutablePlan::Scratch scratch;
        plan_.runRange(x, 0, x.rows(), labels, scratch);
        return;
    }
    runSharded(poolFor(options_), workers, x.rows(),
               shardRowsFor(x.rows()),
               [&](std::size_t begin, std::size_t end,
                   ir::ExecutablePlan::Scratch &scratch) {
                   plan_.runRange(x, begin, end, labels + begin, scratch);
               });
}

void
InferenceEngine::run(const ir::QuantizedMatrix &x, int *labels) const
{
    batchesCounter_->add();
    rowsCounter_->add(x.rows());
    std::size_t workers = jobs();
    if (workers <= 1 || x.rows() < options_.minRowsToShard) {
        ir::ExecutablePlan::Scratch scratch;
        plan_.runRange(x, 0, x.rows(), labels, scratch);
        return;
    }
    runSharded(poolFor(options_), workers, x.rows(),
               shardRowsFor(x.rows()),
               [&](std::size_t begin, std::size_t end,
                   ir::ExecutablePlan::Scratch &scratch) {
                   plan_.runRange(x, begin, end, labels + begin, scratch);
               });
}

std::vector<int>
InferenceEngine::run(const math::Matrix &x) const
{
    std::vector<int> labels(x.rows());
    if (!labels.empty())
        run(x, labels.data());
    return labels;
}

std::vector<int>
InferenceEngine::run(const ir::QuantizedMatrix &x) const
{
    std::vector<int> labels(x.rows());
    if (!labels.empty())
        run(x, labels.data());
    return labels;
}

}  // namespace homunculus::runtime
