#include "ml/preprocess.hpp"

#include <cmath>
#include <stdexcept>

#include "math/stats.hpp"

namespace homunculus::ml {

void
StandardScaler::fit(const math::Matrix &x)
{
    means_.assign(x.cols(), 0.0);
    stddevs_.assign(x.cols(), 1.0);
    for (std::size_t c = 0; c < x.cols(); ++c) {
        std::vector<double> column = x.col(c);
        means_[c] = math::mean(column);
        double sd = math::stddev(column);
        stddevs_[c] = sd > 1e-12 ? sd : 1.0;
    }
}

math::Matrix
StandardScaler::transform(const math::Matrix &x) const
{
    if (means_.size() != x.cols())
        throw std::runtime_error("StandardScaler: width mismatch");
    math::Matrix out = x;
    for (std::size_t r = 0; r < out.rows(); ++r) {
        double *row = out.rowPtr(r);
        for (std::size_t c = 0; c < out.cols(); ++c)
            row[c] = (row[c] - means_[c]) / stddevs_[c];
    }
    return out;
}

math::Matrix
StandardScaler::fitTransform(const math::Matrix &x)
{
    fit(x);
    return transform(x);
}

StandardScaler
StandardScaler::fromMoments(std::vector<double> means,
                            std::vector<double> stddevs)
{
    if (means.empty() || means.size() != stddevs.size())
        throw std::runtime_error(
            "StandardScaler: moment vectors empty or mismatched");
    for (double sd : stddevs)
        if (!(sd > 0.0))
            throw std::runtime_error(
                "StandardScaler: stored std must be positive");
    StandardScaler scaler;
    scaler.means_ = std::move(means);
    scaler.stddevs_ = std::move(stddevs);
    return scaler;
}

void
MinMaxScaler::fit(const math::Matrix &x)
{
    mins_.assign(x.cols(), 0.0);
    maxs_.assign(x.cols(), 1.0);
    for (std::size_t c = 0; c < x.cols(); ++c) {
        std::vector<double> column = x.col(c);
        mins_[c] = math::minValue(column);
        maxs_[c] = math::maxValue(column);
    }
}

math::Matrix
MinMaxScaler::transform(const math::Matrix &x) const
{
    if (mins_.size() != x.cols())
        throw std::runtime_error("MinMaxScaler: width mismatch");
    math::Matrix out = x;
    for (std::size_t r = 0; r < out.rows(); ++r) {
        double *row = out.rowPtr(r);
        for (std::size_t c = 0; c < out.cols(); ++c) {
            double range = maxs_[c] - mins_[c];
            row[c] = range > 1e-12 ? (row[c] - mins_[c]) / range : 0.0;
        }
    }
    return out;
}

math::Matrix
MinMaxScaler::fitTransform(const math::Matrix &x)
{
    fit(x);
    return transform(x);
}

math::Matrix
oneHot(const std::vector<int> &labels, int num_classes)
{
    math::Matrix out(labels.size(), static_cast<std::size_t>(num_classes));
    for (std::size_t i = 0; i < labels.size(); ++i) {
        int label = labels[i];
        if (label < 0 || label >= num_classes)
            throw std::runtime_error("oneHot: label out of range");
        out(i, static_cast<std::size_t>(label)) = 1.0;
    }
    return out;
}

DataSplit
standardizeSplit(const DataSplit &split)
{
    StandardScaler scaler;
    DataSplit out = split;
    out.train.x = scaler.fitTransform(split.train.x);
    out.test.x = scaler.transform(split.test.x);
    // Record the fit so downstream consumers (artifact serialization,
    // serving) can reapply the exact training-time transform.
    out.scalerMeans = scaler.means();
    out.scalerStds = scaler.stddevs();
    return out;
}

DataSplit
minMaxSplit(const DataSplit &split)
{
    MinMaxScaler scaler;
    DataSplit out = split;
    out.train.x = scaler.fitTransform(split.train.x);
    out.test.x = scaler.transform(split.test.x);
    return out;
}

}  // namespace homunculus::ml
