#include "ml/random_forest.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "math/stats.hpp"

namespace homunculus::ml {

namespace {

/** Draw a bootstrap index sample of the requested size (with replacement). */
std::vector<std::size_t>
bootstrapIndices(std::size_t n, double fraction, common::Rng &rng)
{
    auto count = static_cast<std::size_t>(
        std::max(1.0, fraction * static_cast<double>(n)));
    std::vector<std::size_t> indices(count);
    for (std::size_t i = 0; i < count; ++i)
        indices[i] = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
    return indices;
}

}  // namespace

RandomForestRegressor::RandomForestRegressor(ForestConfig config)
    : config_(config)
{
    if (config_.numTrees == 0)
        common::panic("forest", "numTrees must be positive");
}

void
RandomForestRegressor::train(const math::Matrix &x,
                             const std::vector<double> &y)
{
    if (x.rows() == 0 || x.rows() != y.size())
        common::panic("forest", "regressor train: bad input");
    trees_.clear();
    common::Rng rng(config_.seed);

    // Default feature subsampling: d/3 for regression forests.
    TreeConfig tree_config = config_.tree;
    if (tree_config.maxFeatures == 0)
        tree_config.maxFeatures = std::max<std::size_t>(1, x.cols() / 3);

    for (std::size_t t = 0; t < config_.numTrees; ++t) {
        std::vector<std::size_t> idx =
            bootstrapIndices(x.rows(), config_.bootstrapFraction, rng);
        math::Matrix xb = x.selectRows(idx);
        std::vector<double> yb;
        yb.reserve(idx.size());
        for (std::size_t i : idx)
            yb.push_back(y[i]);
        tree_config.seed = rng.fork().engine()();
        DecisionTreeRegressor tree(tree_config);
        tree.train(xb, yb);
        trees_.push_back(std::move(tree));
    }
}

double
RandomForestRegressor::predictPoint(const std::vector<double> &point) const
{
    return predictWithVariance(point).mean;
}

ForestPrediction
RandomForestRegressor::predictWithVariance(
    const std::vector<double> &point) const
{
    if (trees_.empty())
        common::panic("forest", "predict before train");
    std::vector<double> outputs;
    outputs.reserve(trees_.size());
    for (const auto &tree : trees_)
        outputs.push_back(tree.predictPoint(point));
    return {math::mean(outputs), math::variance(outputs)};
}

std::vector<double>
RandomForestRegressor::predict(const math::Matrix &x) const
{
    std::vector<double> out(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i)
        out[i] = predictPoint(x.row(i));
    return out;
}

RandomForestClassifier::RandomForestClassifier(ForestConfig config)
    : config_(config)
{
    if (config_.numTrees == 0)
        common::panic("forest", "numTrees must be positive");
}

void
RandomForestClassifier::train(const Dataset &data)
{
    if (data.numSamples() == 0)
        common::panic("forest", "classifier train: empty dataset");
    trees_.clear();
    numClasses_ = data.numClasses;
    common::Rng rng(config_.seed ^ 0xA5A5A5A5ull);

    TreeConfig tree_config = config_.tree;
    if (tree_config.maxFeatures == 0) {
        tree_config.maxFeatures = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::sqrt(static_cast<double>(data.numFeatures()))));
    }

    for (std::size_t t = 0; t < config_.numTrees; ++t) {
        std::vector<std::size_t> idx = bootstrapIndices(
            data.numSamples(), config_.bootstrapFraction, rng);
        Dataset sample = data.selectSamples(idx);
        tree_config.seed = rng.fork().engine()();
        DecisionTreeClassifier tree(tree_config);
        tree.train(sample);
        trees_.push_back(std::move(tree));
    }
}

std::vector<double>
RandomForestClassifier::predictProbaPoint(
    const std::vector<double> &point) const
{
    if (trees_.empty())
        common::panic("forest", "predict before train");
    std::vector<double> votes(static_cast<std::size_t>(numClasses_), 0.0);
    for (const auto &tree : trees_)
        votes[static_cast<std::size_t>(tree.predictPoint(point))] += 1.0;
    for (double &v : votes)
        v /= static_cast<double>(trees_.size());
    return votes;
}

int
RandomForestClassifier::predictPoint(const std::vector<double> &point) const
{
    std::vector<double> probs = predictProbaPoint(point);
    std::size_t best = 0;
    for (std::size_t c = 1; c < probs.size(); ++c)
        if (probs[c] > probs[best])
            best = c;
    return static_cast<int>(best);
}

std::vector<int>
RandomForestClassifier::predict(const math::Matrix &x) const
{
    std::vector<int> out(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i)
        out[i] = predictPoint(x.row(i));
    return out;
}

}  // namespace homunculus::ml
