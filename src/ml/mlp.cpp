#include "ml/mlp.hpp"

#include <cmath>
#include <stdexcept>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "ml/preprocess.hpp"

namespace homunculus::ml {

std::string
activationName(Activation activation)
{
    switch (activation) {
      case Activation::kRelu: return "relu";
      case Activation::kTanh: return "tanh";
      case Activation::kSigmoid: return "sigmoid";
    }
    return "relu";
}

Activation
activationFromName(const std::string &name)
{
    if (name == "relu")
        return Activation::kRelu;
    if (name == "tanh")
        return Activation::kTanh;
    if (name == "sigmoid")
        return Activation::kSigmoid;
    throw std::runtime_error("unknown activation: " + name);
}

std::vector<std::size_t>
MlpConfig::layerDims() const
{
    std::vector<std::size_t> dims;
    dims.push_back(inputDim);
    for (std::size_t h : hiddenLayers)
        dims.push_back(h);
    dims.push_back(static_cast<std::size_t>(numClasses));
    return dims;
}

std::size_t
MlpConfig::paramCount() const
{
    std::vector<std::size_t> dims = layerDims();
    std::size_t total = 0;
    for (std::size_t l = 0; l + 1 < dims.size(); ++l)
        total += dims[l] * dims[l + 1] + dims[l + 1];
    return total;
}

Mlp::Mlp(MlpConfig config) : config_(std::move(config))
{
    if (config_.inputDim == 0)
        common::panic("mlp", "inputDim must be positive");
    if (config_.numClasses < 2)
        common::panic("mlp", "numClasses must be at least 2");
    common::Rng rng(config_.seed);
    std::vector<std::size_t> dims = config_.layerDims();
    for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
        math::Matrix w(dims[l], dims[l + 1]);
        // He initialization keeps ReLU activations well-scaled.
        double scale = std::sqrt(2.0 / static_cast<double>(dims[l]));
        for (double &value : w.data())
            value = rng.gaussian(0.0, scale);
        weights_.push_back(std::move(w));
        biases_.emplace_back(dims[l + 1], 0.0);
    }
}

math::Matrix
Mlp::applyActivation(const math::Matrix &z) const
{
    switch (config_.activation) {
      case Activation::kRelu:
        return z.map([](double v) { return v > 0.0 ? v : 0.0; });
      case Activation::kTanh:
        return z.map([](double v) { return std::tanh(v); });
      case Activation::kSigmoid:
        return z.map([](double v) { return 1.0 / (1.0 + std::exp(-v)); });
    }
    return z;
}

math::Matrix
Mlp::activationDerivative(const math::Matrix &activated) const
{
    switch (config_.activation) {
      case Activation::kRelu:
        return activated.map([](double a) { return a > 0.0 ? 1.0 : 0.0; });
      case Activation::kTanh:
        return activated.map([](double a) { return 1.0 - a * a; });
      case Activation::kSigmoid:
        return activated.map([](double a) { return a * (1.0 - a); });
    }
    return activated;
}

math::Matrix
Mlp::softmaxRows(const math::Matrix &z)
{
    math::Matrix out = z;
    for (std::size_t r = 0; r < out.rows(); ++r) {
        double *row = out.rowPtr(r);
        double max_v = row[0];
        for (std::size_t c = 1; c < out.cols(); ++c)
            max_v = std::max(max_v, row[c]);
        double total = 0.0;
        for (std::size_t c = 0; c < out.cols(); ++c) {
            row[c] = std::exp(row[c] - max_v);
            total += row[c];
        }
        for (std::size_t c = 0; c < out.cols(); ++c)
            row[c] /= total;
    }
    return out;
}

void
Mlp::forward(const math::Matrix &x,
             std::vector<math::Matrix> &activations) const
{
    activations.clear();
    activations.push_back(x);
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        math::Matrix z = activations.back().matmul(weights_[l]);
        z.addRowVector(biases_[l]);
        bool is_output = (l + 1 == weights_.size());
        activations.push_back(is_output ? softmaxRows(z)
                                        : applyActivation(z));
    }
}

math::Matrix
Mlp::predictProba(const math::Matrix &x) const
{
    if (x.cols() != config_.inputDim)
        common::panic("mlp", "predict: input width mismatch");
    std::vector<math::Matrix> activations;
    forward(x, activations);
    return activations.back();
}

std::vector<int>
Mlp::predict(const math::Matrix &x) const
{
    math::Matrix proba = predictProba(x);
    std::vector<int> labels(proba.rows());
    for (std::size_t r = 0; r < proba.rows(); ++r)
        labels[r] = static_cast<int>(proba.argmaxRow(r));
    return labels;
}

double
Mlp::loss(const Dataset &data) const
{
    math::Matrix proba = predictProba(data.x);
    double total = 0.0;
    for (std::size_t r = 0; r < proba.rows(); ++r) {
        double p = proba(r, static_cast<std::size_t>(data.y[r]));
        total -= std::log(std::max(p, 1e-12));
    }
    return total / static_cast<double>(std::max<std::size_t>(1, proba.rows()));
}

void
Mlp::setParameters(std::vector<math::Matrix> weights,
                   std::vector<std::vector<double>> biases)
{
    if (weights.size() != weights_.size() || biases.size() != biases_.size())
        common::panic("mlp", "setParameters: layer count mismatch");
    for (std::size_t l = 0; l < weights.size(); ++l) {
        if (weights[l].rows() != weights_[l].rows() ||
            weights[l].cols() != weights_[l].cols() ||
            biases[l].size() != biases_[l].size()) {
            common::panic("mlp", "setParameters: layer shape mismatch");
        }
    }
    weights_ = std::move(weights);
    biases_ = std::move(biases);
}

double
Mlp::train(const Dataset &data)
{
    if (data.numSamples() == 0)
        common::panic("mlp", "train: empty dataset");
    if (data.numFeatures() != config_.inputDim)
        common::panic("mlp", "train: input width mismatch");

    common::Rng rng(config_.seed ^ 0x9E3779B97F4A7C15ull);
    math::Matrix targets = oneHot(data.y, config_.numClasses);

    if (adamMW_.empty() && config_.useAdam) {
        for (std::size_t l = 0; l < weights_.size(); ++l) {
            adamMW_.emplace_back(weights_[l].rows(), weights_[l].cols());
            adamVW_.emplace_back(weights_[l].rows(), weights_[l].cols());
            adamMB_.emplace_back(biases_[l].size(), 0.0);
            adamVB_.emplace_back(biases_[l].size(), 0.0);
        }
    }

    const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
    std::size_t n = data.numSamples();
    std::size_t batch = std::min(config_.batchSize, n);
    double last_loss = 0.0;

    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        std::vector<std::size_t> perm = rng.permutation(n);
        double epoch_loss = 0.0;
        std::size_t batches = 0;

        for (std::size_t start = 0; start < n; start += batch) {
            std::size_t end = std::min(start + batch, n);
            std::vector<std::size_t> idx(
                perm.begin() + static_cast<std::ptrdiff_t>(start),
                perm.begin() + static_cast<std::ptrdiff_t>(end));
            math::Matrix xb = data.x.selectRows(idx);
            math::Matrix tb = targets.selectRows(idx);
            double inv_b = 1.0 / static_cast<double>(idx.size());

            std::vector<math::Matrix> acts;
            forward(xb, acts);

            // Cross-entropy for reporting.
            for (std::size_t r = 0; r < idx.size(); ++r) {
                double p = acts.back()(
                    r, static_cast<std::size_t>(data.y[idx[r]]));
                epoch_loss -= std::log(std::max(p, 1e-12)) * inv_b;
            }
            ++batches;

            // Softmax + cross-entropy gradient at the output layer.
            math::Matrix delta = acts.back() - tb;
            for (std::size_t l = weights_.size(); l-- > 0;) {
                math::Matrix grad_w =
                    acts[l].transposed().matmul(delta) * inv_b;
                std::vector<double> grad_b = delta.colSums();
                for (double &g : grad_b)
                    g *= inv_b;
                if (config_.l2Penalty > 0.0)
                    grad_w += weights_[l] * config_.l2Penalty;

                if (l > 0) {
                    // Propagate before the weight update so the gradient
                    // uses the pre-update weights.
                    math::Matrix back =
                        delta.matmul(weights_[l].transposed());
                    delta = back.hadamard(activationDerivative(acts[l]));
                }

                if (config_.useAdam) {
                    ++adamStep_;
                    double corr1 =
                        1.0 - std::pow(beta1,
                                       static_cast<double>(adamStep_));
                    double corr2 =
                        1.0 - std::pow(beta2,
                                       static_cast<double>(adamStep_));
                    auto &mw = adamMW_[l];
                    auto &vw = adamVW_[l];
                    for (std::size_t i = 0; i < grad_w.size(); ++i) {
                        double g = grad_w.data()[i];
                        mw.data()[i] = beta1 * mw.data()[i] +
                                       (1.0 - beta1) * g;
                        vw.data()[i] = beta2 * vw.data()[i] +
                                       (1.0 - beta2) * g * g;
                        double m_hat = mw.data()[i] / corr1;
                        double v_hat = vw.data()[i] / corr2;
                        weights_[l].data()[i] -=
                            config_.learningRate * m_hat /
                            (std::sqrt(v_hat) + eps);
                    }
                    auto &mb = adamMB_[l];
                    auto &vb = adamVB_[l];
                    for (std::size_t i = 0; i < grad_b.size(); ++i) {
                        double g = grad_b[i];
                        mb[i] = beta1 * mb[i] + (1.0 - beta1) * g;
                        vb[i] = beta2 * vb[i] + (1.0 - beta2) * g * g;
                        double m_hat = mb[i] / corr1;
                        double v_hat = vb[i] / corr2;
                        biases_[l][i] -= config_.learningRate * m_hat /
                                         (std::sqrt(v_hat) + eps);
                    }
                } else {
                    for (std::size_t i = 0; i < grad_w.size(); ++i)
                        weights_[l].data()[i] -=
                            config_.learningRate * grad_w.data()[i];
                    for (std::size_t i = 0; i < grad_b.size(); ++i)
                        biases_[l][i] -= config_.learningRate * grad_b[i];
                }
            }
        }
        last_loss = epoch_loss / static_cast<double>(std::max<std::size_t>(
                                     1, batches));
    }
    return last_loss;
}

}  // namespace homunculus::ml
