/**
 * @file
 * KMeans clustering with k-means++ initialization.
 *
 * KMeans is one of the "classical" families IIsy maps onto match-action
 * tables (one MAT per cluster); Figure 7 of the paper sweeps the cluster
 * budget against V-measure. Deterministic given a seed.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "math/matrix.hpp"

namespace homunculus::ml {

/** Hyperparameters for a KMeans fit. */
struct KMeansConfig
{
    std::size_t numClusters = 2;
    std::size_t maxIterations = 100;
    double tolerance = 1e-6;   ///< centroid-shift convergence threshold.
    std::uint64_t seed = 1;
};

/** Fitted KMeans model. */
class KMeans
{
  public:
    explicit KMeans(KMeansConfig config);

    /** Run Lloyd's algorithm on @p x; returns the final inertia. */
    double fit(const math::Matrix &x);

    /** Nearest-centroid assignment per row. */
    std::vector<int> predict(const math::Matrix &x) const;

    /** Assignment of a single point. */
    int predictPoint(const std::vector<double> &point) const;

    /** Sum of squared distances to assigned centroids (training inertia). */
    double inertia() const { return inertia_; }

    /** Number of Lloyd iterations actually executed. */
    std::size_t iterationsRun() const { return iterationsRun_; }

    const math::Matrix &centroids() const { return centroids_; }
    const KMeansConfig &config() const { return config_; }

  private:
    void initCentroidsPlusPlus(const math::Matrix &x);

    KMeansConfig config_;
    math::Matrix centroids_;  ///< k x d.
    double inertia_ = 0.0;
    std::size_t iterationsRun_ = 0;
};

}  // namespace homunculus::ml
