#include "ml/dataset.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace homunculus::ml {

std::size_t
Dataset::countLabel(int label) const
{
    std::size_t count = 0;
    for (int value : y)
        if (value == label)
            ++count;
    return count;
}

std::vector<std::size_t>
Dataset::classCounts() const
{
    std::vector<std::size_t> counts(static_cast<std::size_t>(numClasses), 0);
    for (int value : y)
        if (value >= 0 && value < numClasses)
            ++counts[static_cast<std::size_t>(value)];
    return counts;
}

Dataset
Dataset::selectSamples(const std::vector<std::size_t> &indices) const
{
    Dataset out;
    out.x = x.selectRows(indices);
    out.y.reserve(indices.size());
    for (std::size_t idx : indices)
        out.y.push_back(y.at(idx));
    out.numClasses = numClasses;
    out.featureNames = featureNames;
    return out;
}

Dataset
Dataset::selectFeatures(const std::vector<std::size_t> &indices) const
{
    Dataset out;
    out.x = x.selectCols(indices);
    out.y = y;
    out.numClasses = numClasses;
    if (!featureNames.empty()) {
        out.featureNames.reserve(indices.size());
        for (std::size_t idx : indices)
            out.featureNames.push_back(featureNames.at(idx));
    }
    return out;
}

Dataset
Dataset::concat(const Dataset &other) const
{
    if (numSamples() == 0)
        return other;
    if (other.numSamples() == 0)
        return *this;
    if (numFeatures() != other.numFeatures())
        throw std::runtime_error("Dataset::concat: feature width mismatch");
    Dataset out;
    out.x = x.vstack(other.x);
    out.y = y;
    out.y.insert(out.y.end(), other.y.begin(), other.y.end());
    out.numClasses = std::max(numClasses, other.numClasses);
    out.featureNames = featureNames;
    return out;
}

void
Dataset::validate() const
{
    if (x.rows() != y.size())
        throw std::runtime_error("Dataset: row/label count mismatch");
    if (!featureNames.empty() && featureNames.size() != x.cols())
        throw std::runtime_error("Dataset: feature-name width mismatch");
    for (int label : y) {
        if (label < 0 || label >= numClasses)
            throw std::runtime_error("Dataset: label outside [0, numClasses)");
    }
}

DataSplit
trainTestSplit(const Dataset &data, double test_fraction, std::uint64_t seed)
{
    if (test_fraction <= 0.0 || test_fraction >= 1.0)
        throw std::runtime_error("trainTestSplit: fraction must be in (0,1)");
    common::Rng rng(seed);
    std::vector<std::size_t> perm = rng.permutation(data.numSamples());
    auto test_count = static_cast<std::size_t>(
        test_fraction * static_cast<double>(data.numSamples()));
    std::vector<std::size_t> test_idx(perm.begin(),
                                      perm.begin() +
                                          static_cast<std::ptrdiff_t>(test_count));
    std::vector<std::size_t> train_idx(
        perm.begin() + static_cast<std::ptrdiff_t>(test_count), perm.end());
    return {data.selectSamples(train_idx), data.selectSamples(test_idx)};
}

DataSplit
stratifiedSplit(const Dataset &data, double test_fraction, std::uint64_t seed)
{
    if (test_fraction <= 0.0 || test_fraction >= 1.0)
        throw std::runtime_error("stratifiedSplit: fraction must be in (0,1)");
    common::Rng rng(seed);
    std::vector<std::vector<std::size_t>> by_class(
        static_cast<std::size_t>(std::max(1, data.numClasses)));
    for (std::size_t i = 0; i < data.y.size(); ++i)
        by_class[static_cast<std::size_t>(data.y[i])].push_back(i);

    std::vector<std::size_t> train_idx, test_idx;
    for (auto &bucket : by_class) {
        rng.shuffle(bucket);
        auto test_count = static_cast<std::size_t>(
            test_fraction * static_cast<double>(bucket.size()));
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            if (i < test_count)
                test_idx.push_back(bucket[i]);
            else
                train_idx.push_back(bucket[i]);
        }
    }
    rng.shuffle(train_idx);
    rng.shuffle(test_idx);
    return {data.selectSamples(train_idx), data.selectSamples(test_idx)};
}

}  // namespace homunculus::ml
