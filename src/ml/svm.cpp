#include "ml/svm.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace homunculus::ml {

LinearSvm::LinearSvm(SvmConfig config) : config_(config)
{
}

double
LinearSvm::train(const Dataset &data)
{
    if (data.numSamples() == 0)
        common::panic("svm", "train: empty dataset");
    numClasses_ = data.numClasses;
    std::size_t d = data.numFeatures();
    weights_ = math::Matrix(static_cast<std::size_t>(numClasses_), d);
    biases_.assign(static_cast<std::size_t>(numClasses_), 0.0);

    common::Rng rng(config_.seed);
    std::size_t n = data.numSamples();
    double final_loss = 0.0;

    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        std::vector<std::size_t> perm = rng.permutation(n);
        double epoch_loss = 0.0;
        // Decaying step size stabilizes the subgradient updates.
        double step = config_.learningRate /
                      (1.0 + 0.1 * static_cast<double>(epoch));

        for (std::size_t idx : perm) {
            std::vector<double> xi = data.x.row(idx);
            for (int c = 0; c < numClasses_; ++c) {
                auto cu = static_cast<std::size_t>(c);
                double target = (data.y[idx] == c) ? 1.0 : -1.0;
                double margin =
                    target * (math::dot(weights_.row(cu), xi) + biases_[cu]);
                // L2 shrinkage applies on every step.
                for (std::size_t f = 0; f < d; ++f)
                    weights_(cu, f) *= (1.0 - step * config_.regularization);
                if (margin < 1.0) {
                    epoch_loss += 1.0 - margin;
                    for (std::size_t f = 0; f < d; ++f)
                        weights_(cu, f) += step * target * xi[f];
                    biases_[cu] += step * target;
                }
            }
        }
        final_loss = epoch_loss / static_cast<double>(n);
    }
    return final_loss;
}

math::Matrix
LinearSvm::decisionFunction(const math::Matrix &x) const
{
    if (numClasses_ == 0)
        common::panic("svm", "decisionFunction before train");
    math::Matrix scores(x.rows(), static_cast<std::size_t>(numClasses_));
    for (std::size_t i = 0; i < x.rows(); ++i) {
        std::vector<double> xi = x.row(i);
        for (int c = 0; c < numClasses_; ++c) {
            auto cu = static_cast<std::size_t>(c);
            scores(i, cu) = math::dot(weights_.row(cu), xi) + biases_[cu];
        }
    }
    return scores;
}

std::vector<int>
LinearSvm::predict(const math::Matrix &x) const
{
    math::Matrix scores = decisionFunction(x);
    std::vector<int> out(scores.rows());
    for (std::size_t i = 0; i < scores.rows(); ++i)
        out[i] = static_cast<int>(scores.argmaxRow(i));
    return out;
}

std::size_t
LinearSvm::paramCount() const
{
    return static_cast<std::size_t>(numClasses_) * (weights_.cols() + 1);
}

}  // namespace homunculus::ml
