/**
 * @file
 * Multi-layer perceptron with minibatch backpropagation.
 *
 * This is the DNN family Homunculus searches over for the Taurus and FPGA
 * backends. Models are deliberately small (they must map onto a switch
 * pipeline), so the implementation favors determinism and clarity over
 * large-scale throughput: dense matrix kernels, softmax cross-entropy,
 * SGD or Adam, optional L2 regularization.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "math/matrix.hpp"
#include "ml/dataset.hpp"

namespace homunculus::ml {

/** Hidden-layer nonlinearity. Data planes favor ReLU (max is cheap). */
enum class Activation { kRelu, kTanh, kSigmoid };

/** Parse/format helpers for Activation. */
std::string activationName(Activation activation);
Activation activationFromName(const std::string &name);

/** Hyperparameters of an MLP; the BO loop mutates exactly these. */
struct MlpConfig
{
    std::size_t inputDim = 0;
    std::vector<std::size_t> hiddenLayers;  ///< neurons per hidden layer.
    int numClasses = 2;
    Activation activation = Activation::kRelu;
    double learningRate = 0.01;
    std::size_t batchSize = 32;
    std::size_t epochs = 30;
    double l2Penalty = 0.0;
    bool useAdam = true;
    std::uint64_t seed = 1;

    /** Total trainable parameter count (weights + biases). */
    std::size_t paramCount() const;

    /** Layer widths including input and output: [in, h..., out]. */
    std::vector<std::size_t> layerDims() const;
};

/** A trained (or trainable) multi-layer perceptron classifier. */
class Mlp
{
  public:
    explicit Mlp(MlpConfig config);

    /** Train on the given dataset; returns final training loss. */
    double train(const Dataset &data);

    /** Class-probability matrix (n x numClasses, softmax outputs). */
    math::Matrix predictProba(const math::Matrix &x) const;

    /** Hard class predictions (argmax over probabilities). */
    std::vector<int> predict(const math::Matrix &x) const;

    /** Mean cross-entropy loss on a dataset. */
    double loss(const Dataset &data) const;

    const MlpConfig &config() const { return config_; }
    std::size_t paramCount() const { return config_.paramCount(); }

    /** Layer weights: weights()[l] maps layer l activations to l+1. */
    const std::vector<math::Matrix> &weights() const { return weights_; }
    const std::vector<std::vector<double>> &biases() const { return biases_; }

    /** Replace parameters (used when loading quantized weights back). */
    void setParameters(std::vector<math::Matrix> weights,
                       std::vector<std::vector<double>> biases);

  private:
    /** Forward pass storing per-layer activations for backprop. */
    void forward(const math::Matrix &x,
                 std::vector<math::Matrix> &activations) const;

    math::Matrix applyActivation(const math::Matrix &z) const;
    math::Matrix activationDerivative(const math::Matrix &activated) const;
    static math::Matrix softmaxRows(const math::Matrix &z);

    MlpConfig config_;
    std::vector<math::Matrix> weights_;
    std::vector<std::vector<double>> biases_;

    // Adam state (allocated lazily on first train step).
    std::vector<math::Matrix> adamMW_, adamVW_;
    std::vector<std::vector<double>> adamMB_, adamVB_;
    std::size_t adamStep_ = 0;
};

}  // namespace homunculus::ml
