/**
 * @file
 * Labeled tabular dataset container, the currency of the ML substrate.
 */
#pragma once

#include <string>
#include <vector>

#include "math/matrix.hpp"

namespace homunculus::ml {

/**
 * A labeled classification dataset: an n x d feature matrix plus integer
 * class labels in [0, numClasses).
 */
struct Dataset
{
    math::Matrix x;                       ///< n x d feature matrix.
    std::vector<int> y;                   ///< n class labels.
    int numClasses = 0;                   ///< label alphabet size.
    std::vector<std::string> featureNames;  ///< optional, length d.

    std::size_t numSamples() const { return x.rows(); }
    std::size_t numFeatures() const { return x.cols(); }

    /** Count of samples carrying label @p label. */
    std::size_t countLabel(int label) const;

    /** Per-class sample counts (length numClasses). */
    std::vector<std::size_t> classCounts() const;

    /** Subset of samples by row index (labels follow). */
    Dataset selectSamples(const std::vector<std::size_t> &indices) const;

    /** Subset of feature columns by index (names follow). */
    Dataset selectFeatures(const std::vector<std::size_t> &indices) const;

    /** Concatenate another dataset's rows (same width and class count). */
    Dataset concat(const Dataset &other) const;

    /** Validate internal consistency; throws std::runtime_error if broken. */
    void validate() const;
};

/** A train/test pair as produced by loaders and generators. */
struct DataSplit
{
    Dataset train;
    Dataset test;

    /**
     * Training-time StandardScaler moments, recorded when the loader
     * standardized the features (empty otherwise). The compiler stamps
     * these into every candidate's ModelIr (scaler provenance,
     * homunculus-ir v3) so serving applies the exact training-time
     * transform instead of refitting statistics on live traffic.
     *
     * Contract for loaders: empty moments assert the features are RAW.
     * A loader that standardizes x itself MUST copy the fitted
     * scaler's means()/stddevs() here (standardizeSplit does; see the
     * examples for the manual pattern) — otherwise the emitted
     * artifact records "trained on raw features" and serving will skip
     * the transform the model actually needs.
     */
    std::vector<double> scalerMeans;
    std::vector<double> scalerStds;
};

/**
 * Deterministically split @p data into train/test partitions.
 *
 * @param data source dataset
 * @param test_fraction fraction of rows assigned to test, in (0, 1)
 * @param seed shuffle seed
 */
DataSplit trainTestSplit(const Dataset &data, double test_fraction,
                         std::uint64_t seed);

/**
 * Stratified variant: preserves per-class proportions in both partitions.
 */
DataSplit stratifiedSplit(const Dataset &data, double test_fraction,
                          std::uint64_t seed);

}  // namespace homunculus::ml
