#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.hpp"

namespace homunculus::ml {

namespace {

/** Gini impurity of an integer label subset. */
double
giniImpurity(const std::vector<int> &y,
             const std::vector<std::size_t> &indices, int num_classes)
{
    if (indices.empty())
        return 0.0;
    std::vector<double> counts(static_cast<std::size_t>(num_classes), 0.0);
    for (std::size_t idx : indices)
        counts[static_cast<std::size_t>(y[idx])] += 1.0;
    double n = static_cast<double>(indices.size());
    double impurity = 1.0;
    for (double c : counts) {
        double p = c / n;
        impurity -= p * p;
    }
    return impurity;
}

/** Mean of a regression target subset. */
double
subsetMean(const std::vector<double> &y,
           const std::vector<std::size_t> &indices)
{
    if (indices.empty())
        return 0.0;
    double total = 0.0;
    for (std::size_t idx : indices)
        total += y[idx];
    return total / static_cast<double>(indices.size());
}

/** Sum of squared deviations of a regression target subset. */
double
subsetSse(const std::vector<double> &y,
          const std::vector<std::size_t> &indices)
{
    double m = subsetMean(y, indices);
    double total = 0.0;
    for (std::size_t idx : indices) {
        double d = y[idx] - m;
        total += d * d;
    }
    return total;
}

/** Candidate feature subset for a split (all when max_features == 0). */
std::vector<std::size_t>
candidateFeatures(std::size_t d, std::size_t max_features, common::Rng &rng)
{
    std::vector<std::size_t> all(d);
    std::iota(all.begin(), all.end(), std::size_t{0});
    if (max_features == 0 || max_features >= d)
        return all;
    rng.shuffle(all);
    all.resize(max_features);
    return all;
}

/** Midpoint thresholds between consecutive distinct sorted values. */
std::vector<double>
candidateThresholds(const math::Matrix &x,
                    const std::vector<std::size_t> &indices,
                    std::size_t feature)
{
    std::vector<double> values;
    values.reserve(indices.size());
    for (std::size_t idx : indices)
        values.push_back(x(idx, feature));
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    std::vector<double> thresholds;
    for (std::size_t i = 0; i + 1 < values.size(); ++i)
        thresholds.push_back(0.5 * (values[i] + values[i + 1]));
    // Subsample very dense threshold sets to bound split cost.
    constexpr std::size_t kMaxThresholds = 64;
    if (thresholds.size() > kMaxThresholds) {
        std::vector<double> sampled;
        double stride = static_cast<double>(thresholds.size()) /
                        static_cast<double>(kMaxThresholds);
        for (std::size_t i = 0; i < kMaxThresholds; ++i)
            sampled.push_back(
                thresholds[static_cast<std::size_t>(i * stride)]);
        return sampled;
    }
    return thresholds;
}

std::size_t
nodeDepth(const TreeNode *node)
{
    if (!node || node->isLeaf)
        return 0;
    return 1 + std::max(nodeDepth(node->left.get()),
                        nodeDepth(node->right.get()));
}

std::size_t
countNodes(const TreeNode *node)
{
    if (!node)
        return 0;
    return 1 + countNodes(node->left.get()) + countNodes(node->right.get());
}

std::size_t
countLeaves(const TreeNode *node)
{
    if (!node)
        return 0;
    if (node->isLeaf)
        return 1;
    return countLeaves(node->left.get()) + countLeaves(node->right.get());
}

const TreeNode *
descend(const TreeNode *node, const std::vector<double> &point)
{
    while (node && !node->isLeaf) {
        node = point[node->feature] <= node->threshold ? node->left.get()
                                                       : node->right.get();
    }
    return node;
}

}  // namespace

DecisionTreeClassifier::DecisionTreeClassifier(TreeConfig config)
    : config_(config)
{
}

std::unique_ptr<TreeNode>
DecisionTreeClassifier::build(const math::Matrix &x,
                              const std::vector<int> &y,
                              const std::vector<std::size_t> &indices,
                              std::size_t depth, common::Rng &rng) const
{
    auto node = std::make_unique<TreeNode>();

    // Leaf payload: majority class + distribution.
    std::vector<double> counts(static_cast<std::size_t>(numClasses_), 0.0);
    for (std::size_t idx : indices)
        counts[static_cast<std::size_t>(y[idx])] += 1.0;
    std::size_t best_class = 0;
    for (std::size_t c = 1; c < counts.size(); ++c)
        if (counts[c] > counts[best_class])
            best_class = c;
    node->classLabel = static_cast<int>(best_class);
    node->classProbs = counts;
    double n = static_cast<double>(std::max<std::size_t>(1, indices.size()));
    for (double &p : node->classProbs)
        p /= n;

    double impurity = giniImpurity(y, indices, numClasses_);
    if (depth >= config_.maxDepth || indices.size() < config_.minSamplesSplit ||
        impurity <= 1e-12) {
        return node;
    }

    double best_gain = 1e-9;
    std::size_t best_feature = 0;
    double best_threshold = 0.0;
    std::vector<std::size_t> best_left, best_right;

    for (std::size_t feature :
         candidateFeatures(x.cols(), config_.maxFeatures, rng)) {
        for (double threshold : candidateThresholds(x, indices, feature)) {
            std::vector<std::size_t> left, right;
            for (std::size_t idx : indices) {
                (x(idx, feature) <= threshold ? left : right).push_back(idx);
            }
            if (left.size() < config_.minSamplesLeaf ||
                right.size() < config_.minSamplesLeaf) {
                continue;
            }
            double nl = static_cast<double>(left.size());
            double nr = static_cast<double>(right.size());
            double child =
                (nl * giniImpurity(y, left, numClasses_) +
                 nr * giniImpurity(y, right, numClasses_)) /
                (nl + nr);
            double gain = impurity - child;
            if (gain > best_gain) {
                best_gain = gain;
                best_feature = feature;
                best_threshold = threshold;
                best_left = std::move(left);
                best_right = std::move(right);
            }
        }
    }

    if (best_left.empty() || best_right.empty())
        return node;

    node->isLeaf = false;
    node->feature = best_feature;
    node->threshold = best_threshold;
    node->left = build(x, y, best_left, depth + 1, rng);
    node->right = build(x, y, best_right, depth + 1, rng);
    return node;
}

void
DecisionTreeClassifier::train(const Dataset &data)
{
    if (data.numSamples() == 0)
        common::panic("tree", "train: empty dataset");
    numClasses_ = data.numClasses;
    common::Rng rng(config_.seed);
    std::vector<std::size_t> indices(data.numSamples());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    root_ = build(data.x, data.y, indices, 0, rng);
}

int
DecisionTreeClassifier::predictPoint(const std::vector<double> &point) const
{
    const TreeNode *leaf = descend(root_.get(), point);
    return leaf ? leaf->classLabel : 0;
}

std::vector<double>
DecisionTreeClassifier::predictProbaPoint(
    const std::vector<double> &point) const
{
    const TreeNode *leaf = descend(root_.get(), point);
    if (!leaf)
        return std::vector<double>(static_cast<std::size_t>(numClasses_),
                                   0.0);
    return leaf->classProbs;
}

std::vector<int>
DecisionTreeClassifier::predict(const math::Matrix &x) const
{
    std::vector<int> out(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i)
        out[i] = predictPoint(x.row(i));
    return out;
}

std::size_t
DecisionTreeClassifier::depth() const
{
    return nodeDepth(root_.get());
}

std::size_t
DecisionTreeClassifier::nodeCount() const
{
    return countNodes(root_.get());
}

std::size_t
DecisionTreeClassifier::leafCount() const
{
    return countLeaves(root_.get());
}

DecisionTreeRegressor::DecisionTreeRegressor(TreeConfig config)
    : config_(config)
{
}

std::unique_ptr<TreeNode>
DecisionTreeRegressor::build(const math::Matrix &x,
                             const std::vector<double> &y,
                             const std::vector<std::size_t> &indices,
                             std::size_t depth, common::Rng &rng) const
{
    auto node = std::make_unique<TreeNode>();
    node->value = subsetMean(y, indices);

    double sse = subsetSse(y, indices);
    if (depth >= config_.maxDepth || indices.size() < config_.minSamplesSplit ||
        sse <= 1e-12) {
        return node;
    }

    double best_gain = 1e-12;
    std::size_t best_feature = 0;
    double best_threshold = 0.0;
    std::vector<std::size_t> best_left, best_right;

    for (std::size_t feature :
         candidateFeatures(x.cols(), config_.maxFeatures, rng)) {
        for (double threshold : candidateThresholds(x, indices, feature)) {
            std::vector<std::size_t> left, right;
            for (std::size_t idx : indices) {
                (x(idx, feature) <= threshold ? left : right).push_back(idx);
            }
            if (left.size() < config_.minSamplesLeaf ||
                right.size() < config_.minSamplesLeaf) {
                continue;
            }
            double gain = sse - subsetSse(y, left) - subsetSse(y, right);
            if (gain > best_gain) {
                best_gain = gain;
                best_feature = feature;
                best_threshold = threshold;
                best_left = std::move(left);
                best_right = std::move(right);
            }
        }
    }

    if (best_left.empty() || best_right.empty())
        return node;

    node->isLeaf = false;
    node->feature = best_feature;
    node->threshold = best_threshold;
    node->left = build(x, y, best_left, depth + 1, rng);
    node->right = build(x, y, best_right, depth + 1, rng);
    return node;
}

void
DecisionTreeRegressor::train(const math::Matrix &x,
                             const std::vector<double> &y)
{
    if (x.rows() == 0 || x.rows() != y.size())
        common::panic("tree", "regressor train: bad input");
    common::Rng rng(config_.seed);
    std::vector<std::size_t> indices(x.rows());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    root_ = build(x, y, indices, 0, rng);
}

double
DecisionTreeRegressor::predictPoint(const std::vector<double> &point) const
{
    const TreeNode *leaf = descend(root_.get(), point);
    return leaf ? leaf->value : 0.0;
}

std::vector<double>
DecisionTreeRegressor::predict(const math::Matrix &x) const
{
    std::vector<double> out(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i)
        out[i] = predictPoint(x.row(i));
    return out;
}

std::size_t
DecisionTreeRegressor::depth() const
{
    return nodeDepth(root_.get());
}

std::size_t
DecisionTreeRegressor::nodeCount() const
{
    return countNodes(root_.get());
}

}  // namespace homunculus::ml
