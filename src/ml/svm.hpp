/**
 * @file
 * Linear support-vector machine trained with hinge-loss subgradient SGD.
 *
 * Linear SVMs are another IIsy-mappable family: one match-action table per
 * feature encodes the per-feature contribution to the decision function.
 * Multi-class is handled one-vs-rest.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "math/matrix.hpp"
#include "ml/dataset.hpp"

namespace homunculus::ml {

/** Hyperparameters for a linear SVM fit. */
struct SvmConfig
{
    double learningRate = 0.05;
    double regularization = 1e-3;  ///< L2 coefficient (lambda).
    std::size_t epochs = 50;
    std::uint64_t seed = 1;
};

/** One-vs-rest linear SVM classifier. */
class LinearSvm
{
  public:
    explicit LinearSvm(SvmConfig config);

    /** Train on the dataset; returns final mean hinge loss. */
    double train(const Dataset &data);

    /** Hard class predictions (argmax of decision values). */
    std::vector<int> predict(const math::Matrix &x) const;

    /** Raw decision values, n x numClasses. */
    math::Matrix decisionFunction(const math::Matrix &x) const;

    /** Per-class weight vectors (numClasses x d). */
    const math::Matrix &weights() const { return weights_; }
    const std::vector<double> &biases() const { return biases_; }
    int numClasses() const { return numClasses_; }

    /** Trainable parameter count: numClasses * (d + 1). */
    std::size_t paramCount() const;

  private:
    SvmConfig config_;
    math::Matrix weights_;   ///< numClasses x d.
    std::vector<double> biases_;
    int numClasses_ = 0;
};

}  // namespace homunculus::ml
