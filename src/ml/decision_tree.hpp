/**
 * @file
 * CART decision trees for classification and regression.
 *
 * Classification trees are an IIsy-mappable family (one MAT per tree
 * level); regression trees are the building block of the random-forest
 * surrogate that drives Bayesian optimization (the paper's HyperMapper
 * configuration uses a random-forest model).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "math/matrix.hpp"
#include "ml/dataset.hpp"

namespace homunculus::ml {

/** Shared growth limits for both tree flavors. */
struct TreeConfig
{
    std::size_t maxDepth = 8;
    std::size_t minSamplesLeaf = 2;
    std::size_t minSamplesSplit = 4;
    /**
     * Number of features examined per split; 0 means all. Forests set
     * this below d to decorrelate trees.
     */
    std::size_t maxFeatures = 0;
    std::uint64_t seed = 1;
};

/** A binary split node; leaves carry a prediction payload. */
struct TreeNode
{
    bool isLeaf = true;
    std::size_t feature = 0;     ///< split feature index.
    double threshold = 0.0;      ///< go left when x[feature] <= threshold.
    int classLabel = 0;          ///< leaf payload (classification).
    double value = 0.0;          ///< leaf payload (regression mean).
    std::vector<double> classProbs;  ///< leaf class distribution.
    std::unique_ptr<TreeNode> left;
    std::unique_ptr<TreeNode> right;
};

/** Gini-impurity CART classifier. */
class DecisionTreeClassifier
{
  public:
    explicit DecisionTreeClassifier(TreeConfig config);

    void train(const Dataset &data);

    std::vector<int> predict(const math::Matrix &x) const;
    int predictPoint(const std::vector<double> &point) const;

    /** Leaf class distribution for a single point. */
    std::vector<double> predictProbaPoint(
        const std::vector<double> &point) const;

    std::size_t depth() const;
    std::size_t nodeCount() const;
    std::size_t leafCount() const;
    const TreeNode *root() const { return root_.get(); }
    const TreeConfig &config() const { return config_; }
    int numClasses() const { return numClasses_; }

  private:
    std::unique_ptr<TreeNode> build(const math::Matrix &x,
                                    const std::vector<int> &y,
                                    const std::vector<std::size_t> &indices,
                                    std::size_t depth,
                                    common::Rng &rng) const;

    TreeConfig config_;
    std::unique_ptr<TreeNode> root_;
    int numClasses_ = 0;
};

/** Variance-reduction CART regressor. */
class DecisionTreeRegressor
{
  public:
    explicit DecisionTreeRegressor(TreeConfig config);

    void train(const math::Matrix &x, const std::vector<double> &y);

    double predictPoint(const std::vector<double> &point) const;
    std::vector<double> predict(const math::Matrix &x) const;

    std::size_t depth() const;
    std::size_t nodeCount() const;
    const TreeNode *root() const { return root_.get(); }

  private:
    std::unique_ptr<TreeNode> build(const math::Matrix &x,
                                    const std::vector<double> &y,
                                    const std::vector<std::size_t> &indices,
                                    std::size_t depth,
                                    common::Rng &rng) const;

    TreeConfig config_;
    std::unique_ptr<TreeNode> root_;
};

}  // namespace homunculus::ml
