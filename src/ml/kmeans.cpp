#include "ml/kmeans.hpp"

#include <limits>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace homunculus::ml {

KMeans::KMeans(KMeansConfig config) : config_(config)
{
    if (config_.numClusters == 0)
        common::panic("kmeans", "numClusters must be positive");
}

void
KMeans::initCentroidsPlusPlus(const math::Matrix &x)
{
    common::Rng rng(config_.seed);
    std::size_t n = x.rows();
    std::size_t k = std::min(config_.numClusters, n);
    centroids_ = math::Matrix(k, x.cols());

    // First centroid uniformly at random.
    std::size_t first = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
    for (std::size_t c = 0; c < x.cols(); ++c)
        centroids_(0, c) = x(first, c);

    std::vector<double> min_dist(n, std::numeric_limits<double>::max());
    for (std::size_t added = 1; added < k; ++added) {
        for (std::size_t i = 0; i < n; ++i) {
            double d = math::squaredDistance(x.row(i),
                                             centroids_.row(added - 1));
            min_dist[i] = std::min(min_dist[i], d);
        }
        std::size_t chosen = rng.categorical(min_dist);
        for (std::size_t c = 0; c < x.cols(); ++c)
            centroids_(added, c) = x(chosen, c);
    }
}

double
KMeans::fit(const math::Matrix &x)
{
    if (x.rows() == 0)
        common::panic("kmeans", "fit: empty input");
    initCentroidsPlusPlus(x);
    std::size_t k = centroids_.rows();
    std::vector<int> assignment(x.rows(), 0);

    for (iterationsRun_ = 0; iterationsRun_ < config_.maxIterations;
         ++iterationsRun_) {
        // Assignment step.
        inertia_ = 0.0;
        for (std::size_t i = 0; i < x.rows(); ++i) {
            double best = std::numeric_limits<double>::max();
            int best_c = 0;
            for (std::size_t c = 0; c < k; ++c) {
                double d = math::squaredDistance(x.row(i), centroids_.row(c));
                if (d < best) {
                    best = d;
                    best_c = static_cast<int>(c);
                }
            }
            assignment[i] = best_c;
            inertia_ += best;
        }

        // Update step.
        math::Matrix new_centroids(k, x.cols());
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < x.rows(); ++i) {
            auto c = static_cast<std::size_t>(assignment[i]);
            ++counts[c];
            for (std::size_t f = 0; f < x.cols(); ++f)
                new_centroids(c, f) += x(i, f);
        }
        double shift = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                // Keep an empty cluster's centroid in place.
                for (std::size_t f = 0; f < x.cols(); ++f)
                    new_centroids(c, f) = centroids_(c, f);
                continue;
            }
            for (std::size_t f = 0; f < x.cols(); ++f) {
                new_centroids(c, f) /= static_cast<double>(counts[c]);
                double d = new_centroids(c, f) - centroids_(c, f);
                shift += d * d;
            }
        }
        centroids_ = std::move(new_centroids);
        if (shift < config_.tolerance)
            break;
    }
    return inertia_;
}

int
KMeans::predictPoint(const std::vector<double> &point) const
{
    double best = std::numeric_limits<double>::max();
    int best_c = 0;
    for (std::size_t c = 0; c < centroids_.rows(); ++c) {
        double d = math::squaredDistance(point, centroids_.row(c));
        if (d < best) {
            best = d;
            best_c = static_cast<int>(c);
        }
    }
    return best_c;
}

std::vector<int>
KMeans::predict(const math::Matrix &x) const
{
    std::vector<int> out(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i)
        out[i] = predictPoint(x.row(i));
    return out;
}

}  // namespace homunculus::ml
