#include "ml/metrics.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

namespace homunculus::ml {

namespace {

void
checkLengths(const std::vector<int> &truth, const std::vector<int> &predicted)
{
    if (truth.size() != predicted.size())
        throw std::runtime_error("metrics: truth/prediction length mismatch");
    if (truth.empty())
        throw std::runtime_error("metrics: empty label vectors");
}

/**
 * Conditional entropy H(A|B) over the joint label distribution, in nats.
 * Labels may be arbitrary ints; a map-based contingency table is built.
 */
double
conditionalEntropy(const std::vector<int> &a, const std::vector<int> &b)
{
    std::map<std::pair<int, int>, double> joint;
    std::map<int, double> marginal_b;
    double n = static_cast<double>(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        joint[{a[i], b[i]}] += 1.0;
        marginal_b[b[i]] += 1.0;
    }
    double h = 0.0;
    for (const auto &[key, count] : joint) {
        double p_joint = count / n;
        double p_b = marginal_b[key.second] / n;
        h -= p_joint * std::log(p_joint / p_b);
    }
    return h;
}

/** Marginal entropy H(A), in nats. */
double
marginalEntropy(const std::vector<int> &a)
{
    std::map<int, double> counts;
    for (int v : a)
        counts[v] += 1.0;
    double n = static_cast<double>(a.size());
    double h = 0.0;
    for (const auto &[label, count] : counts) {
        double p = count / n;
        h -= p * std::log(p);
    }
    return h;
}

}  // namespace

std::vector<std::vector<std::size_t>>
confusionMatrix(const std::vector<int> &truth,
                const std::vector<int> &predicted, int num_classes)
{
    checkLengths(truth, predicted);
    std::vector<std::vector<std::size_t>> matrix(
        static_cast<std::size_t>(num_classes),
        std::vector<std::size_t>(static_cast<std::size_t>(num_classes), 0));
    for (std::size_t i = 0; i < truth.size(); ++i) {
        int t = truth[i];
        int p = predicted[i];
        if (t < 0 || t >= num_classes || p < 0 || p >= num_classes)
            throw std::runtime_error("confusionMatrix: label out of range");
        ++matrix[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)];
    }
    return matrix;
}

double
accuracy(const std::vector<int> &truth, const std::vector<int> &predicted)
{
    checkLengths(truth, predicted);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < truth.size(); ++i)
        if (truth[i] == predicted[i])
            ++hits;
    return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double
precision(const std::vector<int> &truth, const std::vector<int> &predicted,
          int positive)
{
    checkLengths(truth, predicted);
    std::size_t tp = 0, fp = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        if (predicted[i] == positive) {
            if (truth[i] == positive)
                ++tp;
            else
                ++fp;
        }
    }
    return (tp + fp) == 0 ? 0.0
                          : static_cast<double>(tp) /
                                static_cast<double>(tp + fp);
}

double
recall(const std::vector<int> &truth, const std::vector<int> &predicted,
       int positive)
{
    checkLengths(truth, predicted);
    std::size_t tp = 0, fn = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        if (truth[i] == positive) {
            if (predicted[i] == positive)
                ++tp;
            else
                ++fn;
        }
    }
    return (tp + fn) == 0 ? 0.0
                          : static_cast<double>(tp) /
                                static_cast<double>(tp + fn);
}

double
f1Score(const std::vector<int> &truth, const std::vector<int> &predicted,
        int positive)
{
    double p = precision(truth, predicted, positive);
    double r = recall(truth, predicted, positive);
    return (p + r) <= 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double
macroF1(const std::vector<int> &truth, const std::vector<int> &predicted,
        int num_classes)
{
    if (num_classes <= 0)
        throw std::runtime_error("macroF1: num_classes must be positive");
    double total = 0.0;
    for (int c = 0; c < num_classes; ++c)
        total += f1Score(truth, predicted, c);
    return total / static_cast<double>(num_classes);
}

double
f1ForTask(const std::vector<int> &truth, const std::vector<int> &predicted,
          int num_classes)
{
    if (num_classes == 2)
        return f1Score(truth, predicted, 1);
    return macroF1(truth, predicted, num_classes);
}

double
homogeneity(const std::vector<int> &truth, const std::vector<int> &clusters)
{
    checkLengths(truth, clusters);
    double h_c = marginalEntropy(truth);
    if (h_c <= 0.0)
        return 1.0;
    return 1.0 - conditionalEntropy(truth, clusters) / h_c;
}

double
completeness(const std::vector<int> &truth, const std::vector<int> &clusters)
{
    checkLengths(truth, clusters);
    double h_k = marginalEntropy(clusters);
    if (h_k <= 0.0)
        return 1.0;
    return 1.0 - conditionalEntropy(clusters, truth) / h_k;
}

double
vMeasure(const std::vector<int> &truth, const std::vector<int> &clusters)
{
    double h = homogeneity(truth, clusters);
    double c = completeness(truth, clusters);
    return (h + c) <= 0.0 ? 0.0 : 2.0 * h * c / (h + c);
}

}  // namespace homunculus::ml
