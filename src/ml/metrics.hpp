/**
 * @file
 * Classification and clustering quality metrics.
 *
 * The paper's objectives: F1 score for the supervised applications
 * (anomaly, traffic-class, botnet detection) and V-measure for the
 * MAT-constrained KMeans experiment (Figure 7).
 */
#pragma once

#include <cstddef>
#include <vector>

namespace homunculus::ml {

/** Row-major confusion matrix: entry [truth][predicted]. */
std::vector<std::vector<std::size_t>> confusionMatrix(
    const std::vector<int> &truth, const std::vector<int> &predicted,
    int num_classes);

/** Fraction of exact label matches. */
double accuracy(const std::vector<int> &truth,
                const std::vector<int> &predicted);

/** Precision of class @p positive (0 when no positive predictions). */
double precision(const std::vector<int> &truth,
                 const std::vector<int> &predicted, int positive);

/** Recall of class @p positive (0 when no positive truths). */
double recall(const std::vector<int> &truth,
              const std::vector<int> &predicted, int positive);

/** F1 of class @p positive. */
double f1Score(const std::vector<int> &truth,
               const std::vector<int> &predicted, int positive);

/** Unweighted mean of per-class F1 scores ("macro" F1). */
double macroF1(const std::vector<int> &truth,
               const std::vector<int> &predicted, int num_classes);

/**
 * Binary-or-macro F1 convenience: binary tasks report F1 of class 1
 * (the paper's convention for AD/BD), multi-class tasks report macro F1.
 */
double f1ForTask(const std::vector<int> &truth,
                 const std::vector<int> &predicted, int num_classes);

/** Clustering homogeneity: 1 - H(C|K) / H(C). */
double homogeneity(const std::vector<int> &truth,
                   const std::vector<int> &clusters);

/** Clustering completeness: 1 - H(K|C) / H(K). */
double completeness(const std::vector<int> &truth,
                    const std::vector<int> &clusters);

/** V-measure: harmonic mean of homogeneity and completeness. */
double vMeasure(const std::vector<int> &truth,
                const std::vector<int> &clusters);

}  // namespace homunculus::ml
