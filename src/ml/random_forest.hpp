/**
 * @file
 * Random forests: bagged decision trees with feature subsampling.
 *
 * The regressor doubles as the Bayesian-optimization surrogate (the paper
 * configures HyperMapper with a random-forest model for systems workloads);
 * per-tree prediction spread provides the uncertainty estimate Expected
 * Improvement needs. The classifier serves as the feasibility model.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.hpp"

namespace homunculus::ml {

/** Forest-level hyperparameters wrapping per-tree TreeConfig. */
struct ForestConfig
{
    std::size_t numTrees = 30;
    TreeConfig tree;           ///< growth limits per tree.
    double bootstrapFraction = 1.0;  ///< samples drawn per tree (with repl.)
    std::uint64_t seed = 7;
};

/** Mean/variance prediction pair from the regression forest. */
struct ForestPrediction
{
    double mean = 0.0;
    double variance = 0.0;
};

/** Bagged regression forest with per-tree variance. */
class RandomForestRegressor
{
  public:
    explicit RandomForestRegressor(ForestConfig config);

    void train(const math::Matrix &x, const std::vector<double> &y);

    /** Ensemble mean for one point. */
    double predictPoint(const std::vector<double> &point) const;

    /** Ensemble mean + across-tree variance for one point. */
    ForestPrediction predictWithVariance(
        const std::vector<double> &point) const;

    std::vector<double> predict(const math::Matrix &x) const;

    std::size_t numTrees() const { return trees_.size(); }
    bool trained() const { return !trees_.empty(); }

  private:
    ForestConfig config_;
    std::vector<DecisionTreeRegressor> trees_;
};

/** Bagged classification forest (majority vote). */
class RandomForestClassifier
{
  public:
    explicit RandomForestClassifier(ForestConfig config);

    void train(const Dataset &data);

    int predictPoint(const std::vector<double> &point) const;
    std::vector<int> predict(const math::Matrix &x) const;

    /** Vote share per class for one point. */
    std::vector<double> predictProbaPoint(
        const std::vector<double> &point) const;

    std::size_t numTrees() const { return trees_.size(); }
    bool trained() const { return !trees_.empty(); }
    int numClasses() const { return numClasses_; }

  private:
    ForestConfig config_;
    std::vector<DecisionTreeClassifier> trees_;
    int numClasses_ = 0;
};

}  // namespace homunculus::ml
