/**
 * @file
 * Feature preprocessing: scalers and encodings fit on training data only.
 *
 * Data-plane pipelines consume fixed-point features, so scaling into a
 * bounded range is not just an accuracy aid — it bounds the dynamic range
 * the Q-format must represent (see common/fixed_point.hpp).
 */
#pragma once

#include <vector>

#include "math/matrix.hpp"
#include "ml/dataset.hpp"

namespace homunculus::ml {

/** Z-score standardization: (x - mean) / std per feature. */
class StandardScaler
{
  public:
    /** Fit means and stddevs from @p x (columns with zero std use std=1). */
    void fit(const math::Matrix &x);

    /**
     * Rebuild a fitted scaler from stored moments (the ModelIr scaler
     * provenance deserialized from an artifact). Sizes must match and
     * every std must be positive; throws std::runtime_error otherwise.
     */
    static StandardScaler fromMoments(std::vector<double> means,
                                      std::vector<double> stddevs);

    /** Apply the fitted transform. */
    math::Matrix transform(const math::Matrix &x) const;

    /** fit() then transform(). */
    math::Matrix fitTransform(const math::Matrix &x);

    const std::vector<double> &means() const { return means_; }
    const std::vector<double> &stddevs() const { return stddevs_; }
    bool fitted() const { return !means_.empty(); }

  private:
    std::vector<double> means_;
    std::vector<double> stddevs_;
};

/** Min-max scaling into [0, 1] (constant columns map to 0). */
class MinMaxScaler
{
  public:
    void fit(const math::Matrix &x);
    math::Matrix transform(const math::Matrix &x) const;
    math::Matrix fitTransform(const math::Matrix &x);

    const std::vector<double> &mins() const { return mins_; }
    const std::vector<double> &maxs() const { return maxs_; }
    bool fitted() const { return !mins_.empty(); }

  private:
    std::vector<double> mins_;
    std::vector<double> maxs_;
};

/** One-hot encode labels into an n x numClasses 0/1 matrix. */
math::Matrix oneHot(const std::vector<int> &labels, int num_classes);

/** Scale a whole DataSplit with a scaler fit on the training partition. */
DataSplit standardizeSplit(const DataSplit &split);

/** Min-max scale a whole DataSplit fit on the training partition. */
DataSplit minMaxSplit(const DataSplit &split);

}  // namespace homunculus::ml
