#include "common/table_printer.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/logging.hpp"

namespace homunculus::common {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header_.size())
        panic("table_printer", "row width does not match header");
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::cell(double value, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

std::string
TablePrinter::cell(long long value)
{
    return std::to_string(value);
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::ostringstream line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                line << "  ";
            line << row[c];
            for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad)
                line << ' ';
        }
        return line.str();
    };

    std::ostringstream out;
    out << render_row(header_) << "\n";
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c > 0 ? 2 : 0);
    out << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        out << render_row(row) << "\n";
    return out.str();
}

void
TablePrinter::print() const
{
    std::cout << render();
}

}  // namespace homunculus::common
