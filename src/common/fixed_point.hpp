/**
 * @file
 * Q-format fixed-point arithmetic for data-plane inference.
 *
 * Programmable switch fabrics (Taurus compute units, MAT ALUs) operate on
 * narrow fixed-point integers, not IEEE floats. Homunculus quantizes
 * trained model weights into a signed Qm.n representation and the backend
 * simulators execute inference in this representation, so the accuracy the
 * compiler reports is the accuracy of the artifact it actually deploys.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace homunculus::common {

/**
 * A signed fixed-point format with @c integerBits integer bits (including
 * sign) and @c fracBits fractional bits, stored in a 32-bit container.
 * The Taurus paper uses 16-bit Q8.8 pipelines; we default to the same.
 */
class FixedPointFormat
{
  public:
    FixedPointFormat(int integer_bits, int frac_bits);

    int integerBits() const { return integerBits_; }
    int fracBits() const { return fracBits_; }
    int totalBits() const { return integerBits_ + fracBits_; }

    /** Largest representable value. */
    double maxValue() const;
    /** Smallest (most negative) representable value. */
    double minValue() const;
    /** Quantization step (1 / 2^fracBits). */
    double resolution() const;

    /** Encode a real value with round-to-nearest and saturation. */
    std::int32_t quantize(double value) const;

    /** Decode a raw fixed-point word back to a real value. */
    double dequantize(std::int32_t raw) const;

    /** Round-trip a real value through the format (quantize + dequantize). */
    double roundTrip(double value) const;

    /** Saturating fixed-point addition of two raw words. */
    std::int32_t add(std::int32_t a, std::int32_t b) const;

    /** Saturating fixed-point multiply (result renormalized to this format). */
    std::int32_t multiply(std::int32_t a, std::int32_t b) const;

    /** Quantize a vector of reals. */
    std::vector<std::int32_t> quantizeVector(
        const std::vector<double> &values) const;

    /**
     * Quantize @p count reals into a caller-owned buffer, writing
     * @p out[i * out_stride]. This is the one batched quantizer every
     * hot path (ExecutablePlan, MatPipeline::processBatch) must share:
     * element results are bit-identical to quantize(), with the scale
     * hoisted out of the element loop.
     */
    void quantizeInto(const double *values, std::int32_t *out,
                      std::size_t count, std::size_t out_stride = 1) const;

    /** Mean absolute quantization error over a vector of reals. */
    double meanAbsError(const std::vector<double> &values) const;

    /** The default data-plane format, Q8.8 (16-bit). */
    static FixedPointFormat q88() { return {8, 8}; }

  private:
    std::int32_t saturate(std::int64_t raw) const;

    int integerBits_;
    int fracBits_;
};

}  // namespace homunculus::common
