#include "common/rng.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace homunculus::common {

Rng
Rng::fork()
{
    std::uint64_t child_seed = engine_();
    return Rng(child_seed);
}

double
Rng::uniform(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

double
Rng::gaussian(double mean, double stddev)
{
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
}

double
Rng::exponential(double lambda)
{
    std::exponential_distribution<double> dist(lambda);
    return dist(engine_);
}

double
Rng::pareto(double xm, double alpha)
{
    // Inverse-CDF sampling: X = xm / U^(1/alpha), U ~ Uniform(0, 1].
    double u = 1.0 - uniform(0.0, 1.0);
    return xm / std::pow(u, 1.0 / alpha);
}

bool
Rng::bernoulli(double p)
{
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

std::int64_t
Rng::poisson(double mean)
{
    std::poisson_distribution<std::int64_t> dist(mean);
    return dist(engine_);
}

std::size_t
Rng::categorical(const std::vector<double> &weights)
{
    if (weights.empty())
        panic("rng", "categorical() called with empty weight vector");
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (total <= 0.0)
        return 0;
    double r = uniform(0.0, total);
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i)
        perm[i] = i;
    shuffle(perm);
    return perm;
}

}  // namespace homunculus::common
