/**
 * @file
 * Lightweight leveled logging for the Homunculus framework.
 *
 * Follows the gem5 convention of separating user-facing status messages
 * (inform/warn) from internal invariant violations (panic). Logging is
 * routed through a single sink so tests can silence or capture output.
 */
#pragma once

#include <sstream>
#include <string>

namespace homunculus::common {

/** Severity of a log record, in increasing order of importance. */
enum class LogLevel {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
    kNone = 4,  ///< Sentinel: suppress all output.
};

/** Global minimum level; records below it are dropped. */
LogLevel logThreshold();

/** Set the global minimum level (e.g. kNone in unit tests). */
void setLogThreshold(LogLevel level);

/**
 * Emit a single log record to stderr if @p level passes the threshold.
 *
 * @param level severity of the record
 * @param component short subsystem tag, e.g. "opt" or "taurus"
 * @param message fully formatted message body
 */
void logMessage(LogLevel level, const std::string &component,
                const std::string &message);

/**
 * Abort the process after printing an internal-error diagnostic.
 *
 * Mirrors gem5's panic(): use only for conditions that indicate a bug in
 * Homunculus itself, never for user errors.
 */
[[noreturn]] void panic(const std::string &component,
                        const std::string &message);

/** Convenience stream-style logger: HOM_LOG(kInfo, "opt") << "msg"; */
class LogStream
{
  public:
    LogStream(LogLevel level, std::string component)
        : level_(level), component_(std::move(component))
    {
    }

    ~LogStream() { logMessage(level_, component_, buffer_.str()); }

    template <typename T>
    LogStream &
    operator<<(const T &value)
    {
        buffer_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::string component_;
    std::ostringstream buffer_;
};

}  // namespace homunculus::common

#define HOM_LOG(level, component) \
    ::homunculus::common::LogStream( \
        ::homunculus::common::LogLevel::level, component)
