/**
 * @file
 * Parallel dispatch API for the compile path's family searches and the
 * runtime's sharded batch inference.
 *
 * Both entry points are thin shims over the process-default
 * runtime::Executor — one long-lived worker pool shared by every caller
 * — so a dispatch costs a queue handoff, not a per-call thread spawn.
 * A dispatch issued from inside a pool worker (nested parallelism) runs
 * inline on that worker instead of fanning out again.
 *
 * parallelFor() fans an index range out over up to @p jobs participants
 * with an atomic work-stealing counter. Tasks must not share mutable
 * state; exceptions are captured per index and the lowest-index one is
 * rethrown after the dispatch completes, so failure behavior is
 * deterministic regardless of scheduling.
 *
 * parallelForChunks() is the coarse-grained sibling for fine-grained
 * loops (row sharding, per-packet work): it hands each worker a
 * contiguous [begin, end) range plus a stable worker id, so one dispatch
 * amortizes over thousands of elements and callers can keep per-worker
 * scratch arenas instead of per-element ones.
 */
#pragma once

#include <cstddef>
#include <functional>

namespace homunculus::common {

/** Participants to use for @p jobs: 0 resolves to the process-default
 *  executor's parallelism (one per hardware thread) — the single place
 *  that resolution happens. */
std::size_t effectiveJobs(std::size_t jobs);

/**
 * Run fn(0..count-1) across up to @p jobs threads. With jobs <= 1 the
 * calls happen inline on the caller's thread. Blocks until every index
 * completed; rethrows the lowest-index captured exception, if any.
 */
void parallelFor(std::size_t jobs, std::size_t count,
                 const std::function<void(std::size_t)> &fn);

/**
 * Chunked range callback: a contiguous slice [begin, end) of the index
 * space plus the id (0 <= worker < workers) of the worker running it.
 * The worker id is stable across every chunk that worker processes, so
 * callers can index per-worker scratch arenas with it.
 */
using ChunkFn =
    std::function<void(std::size_t begin, std::size_t end,
                       std::size_t worker)>;

/**
 * Run fn over [0, count) in contiguous chunks of up to @p chunk_size
 * indices, work-stolen across up to @p jobs threads. One dispatch per
 * chunk (not per index), so fine-grained loops don't pay per-index
 * std::function overhead. With jobs <= 1 (or a single chunk) the chunks
 * run inline, in order, with worker id 0. Blocks until every chunk
 * completed; rethrows the lowest-chunk captured exception, if any.
 * An exception inside fn abandons the rest of that chunk only.
 */
void parallelForChunks(std::size_t jobs, std::size_t count,
                       std::size_t chunk_size, const ChunkFn &fn);

}  // namespace homunculus::common
