/**
 * @file
 * Minimal worker pool for the compile path's parallel family searches.
 *
 * parallelFor() fans an index range out over a fixed number of threads
 * with an atomic work-stealing counter. Tasks must not share mutable
 * state; exceptions are captured per index and the lowest-index one is
 * rethrown after every worker joins, so failure behavior is deterministic
 * regardless of scheduling.
 */
#pragma once

#include <cstddef>
#include <functional>

namespace homunculus::common {

/** Threads to use for @p jobs (0 = one per hardware thread). */
std::size_t effectiveJobs(std::size_t jobs);

/**
 * Run fn(0..count-1) across up to @p jobs threads. With jobs <= 1 the
 * calls happen inline on the caller's thread. Blocks until every index
 * completed; rethrows the lowest-index captured exception, if any.
 */
void parallelFor(std::size_t jobs, std::size_t count,
                 const std::function<void(std::size_t)> &fn);

}  // namespace homunculus::common
