/**
 * @file
 * Small string helpers shared across the framework (no locale, ASCII only).
 */
#pragma once

#include <string>
#include <vector>

namespace homunculus::common {

/** Split @p text on @p delimiter; adjacent delimiters yield empty fields. */
std::vector<std::string> split(const std::string &text, char delimiter);

/** Join @p parts with @p separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &separator);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &text);

/** Lowercase an ASCII string. */
std::string toLower(const std::string &text);

/** True if @p text begins with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** printf-like formatting into a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Indent every line of @p text by @p spaces spaces (for codegen). */
std::string indent(const std::string &text, int spaces);

/** Replace every occurrence of @p from in @p text with @p to. */
std::string replaceAll(std::string text, const std::string &from,
                       const std::string &to);

}  // namespace homunculus::common
