#include "common/fixed_point.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace homunculus::common {

FixedPointFormat::FixedPointFormat(int integer_bits, int frac_bits)
    : integerBits_(integer_bits), fracBits_(frac_bits)
{
    if (integer_bits < 1 || frac_bits < 0 || integer_bits + frac_bits > 31)
        panic("fixed_point", "invalid Q-format specification");
}

double
FixedPointFormat::maxValue() const
{
    std::int64_t max_raw = (std::int64_t{1} << (totalBits() - 1)) - 1;
    return static_cast<double>(max_raw) / std::pow(2.0, fracBits_);
}

double
FixedPointFormat::minValue() const
{
    std::int64_t min_raw = -(std::int64_t{1} << (totalBits() - 1));
    return static_cast<double>(min_raw) / std::pow(2.0, fracBits_);
}

double
FixedPointFormat::resolution() const
{
    return std::pow(2.0, -fracBits_);
}

std::int32_t
FixedPointFormat::saturate(std::int64_t raw) const
{
    std::int64_t max_raw = (std::int64_t{1} << (totalBits() - 1)) - 1;
    std::int64_t min_raw = -(std::int64_t{1} << (totalBits() - 1));
    if (raw > max_raw)
        raw = max_raw;
    if (raw < min_raw)
        raw = min_raw;
    return static_cast<std::int32_t>(raw);
}

std::int32_t
FixedPointFormat::quantize(double value) const
{
    double scaled = value * std::pow(2.0, fracBits_);
    return saturate(static_cast<std::int64_t>(std::llround(scaled)));
}

double
FixedPointFormat::dequantize(std::int32_t raw) const
{
    return static_cast<double>(raw) / std::pow(2.0, fracBits_);
}

double
FixedPointFormat::roundTrip(double value) const
{
    return dequantize(quantize(value));
}

std::int32_t
FixedPointFormat::add(std::int32_t a, std::int32_t b) const
{
    return saturate(static_cast<std::int64_t>(a) + b);
}

std::int32_t
FixedPointFormat::multiply(std::int32_t a, std::int32_t b) const
{
    std::int64_t product = static_cast<std::int64_t>(a) * b;
    // Renormalize: the product carries 2*fracBits fractional bits.
    product >>= fracBits_;
    return saturate(product);
}

void
FixedPointFormat::quantizeInto(const double *values, std::int32_t *out,
                               std::size_t count,
                               std::size_t out_stride) const
{
    // ldexp(1, n) is the exact power of two pow() would produce, minus
    // the transcendental-call cost; llround + saturate match quantize().
    double scale = std::ldexp(1.0, fracBits_);
    for (std::size_t i = 0; i < count; ++i)
        out[i * out_stride] =
            saturate(static_cast<std::int64_t>(
                std::llround(values[i] * scale)));
}

std::vector<std::int32_t>
FixedPointFormat::quantizeVector(const std::vector<double> &values) const
{
    std::vector<std::int32_t> out;
    out.reserve(values.size());
    for (double v : values)
        out.push_back(quantize(v));
    return out;
}

double
FixedPointFormat::meanAbsError(const std::vector<double> &values) const
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double v : values)
        total += std::fabs(v - roundTrip(v));
    return total / static_cast<double>(values.size());
}

}  // namespace homunculus::common
