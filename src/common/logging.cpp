#include "common/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace homunculus::common {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kWarn};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kNone: return "NONE";
    }
    return "?";
}

}  // namespace

LogLevel
logThreshold()
{
    return g_threshold.load(std::memory_order_relaxed);
}

void
setLogThreshold(LogLevel level)
{
    g_threshold.store(level, std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &component,
           const std::string &message)
{
    if (static_cast<int>(level) < static_cast<int>(logThreshold()))
        return;
    std::cerr << "[" << levelName(level) << "][" << component << "] "
              << message << "\n";
}

void
panic(const std::string &component, const std::string &message)
{
    std::cerr << "[PANIC][" << component << "] " << message << std::endl;
    std::abort();
}

}  // namespace homunculus::common
