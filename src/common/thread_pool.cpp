#include "common/thread_pool.hpp"

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace homunculus::common {

std::size_t
effectiveJobs(std::size_t jobs)
{
    if (jobs != 0)
        return jobs;
    std::size_t hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

void
parallelFor(std::size_t jobs, std::size_t count,
            const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    jobs = effectiveJobs(jobs);

    std::vector<std::string> errors(count);
    // char, not bool: vector<bool> packs bits, and concurrent writes to
    // neighboring indices would race.
    std::vector<char> failed(count, 0);

    auto run_index = [&](std::size_t index) {
        try {
            fn(index);
        } catch (const std::exception &error) {
            errors[index] = error.what();
            failed[index] = 1;
        } catch (...) {
            errors[index] = "unknown exception";
            failed[index] = 1;
        }
    };

    if (jobs <= 1 || count == 1) {
        // Same contract as the threaded path: every index runs, the
        // lowest-index failure is rethrown afterwards.
        for (std::size_t i = 0; i < count; ++i)
            run_index(i);
    } else {
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            for (;;) {
                std::size_t index = next.fetch_add(1);
                if (index >= count)
                    return;
                run_index(index);
            }
        };

        std::vector<std::thread> threads;
        std::size_t num_threads = jobs < count ? jobs : count;
        threads.reserve(num_threads);
        try {
            for (std::size_t t = 0; t < num_threads; ++t)
                threads.emplace_back(worker);
        } catch (...) {
            // Thread creation failed (e.g. RLIMIT_NPROC): drain what was
            // spawned before rethrowing, or their destructors terminate.
            for (auto &thread : threads)
                thread.join();
            throw;
        }
        for (auto &thread : threads)
            thread.join();
    }

    for (std::size_t i = 0; i < count; ++i)
        if (failed[i])
            throw std::runtime_error(errors[i]);
}

}  // namespace homunculus::common
