#include "common/thread_pool.hpp"

// The implementation lives in runtime::Executor (a persistent worker
// pool); these entry points are kept as the stable, dependency-light
// dispatch API the rest of the tree calls. The upward include is
// deliberate: common/ owns the interface, runtime/ owns the pool.
#include "runtime/executor.hpp"

namespace homunculus::common {

std::size_t
effectiveJobs(std::size_t jobs)
{
    // A jobs value of 0 resolves in exactly one place — the process
    // default executor — so every call site agrees on the width and
    // nested parallel sections cannot each re-derive (and multiply)
    // the hardware thread count.
    return runtime::Executor::processDefault().resolve(jobs);
}

void
parallelFor(std::size_t jobs, std::size_t count,
            const std::function<void(std::size_t)> &fn)
{
    runtime::Executor::processDefault().run(
        jobs, count, [&fn](std::size_t index, std::size_t) { fn(index); });
}

void
parallelForChunks(std::size_t jobs, std::size_t count,
                  std::size_t chunk_size, const ChunkFn &fn)
{
    runtime::Executor::processDefault().runChunks(jobs, count, chunk_size,
                                                  fn);
}

}  // namespace homunculus::common
