#include "common/thread_pool.hpp"

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace homunculus::common {

std::size_t
effectiveJobs(std::size_t jobs)
{
    if (jobs != 0)
        return jobs;
    std::size_t hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

namespace {

/**
 * Shared fan-out engine: run task(0..num_tasks-1) over up to @p jobs
 * threads with an atomic work-stealing counter and deterministic error
 * reporting (every task runs; the lowest-index captured exception is
 * rethrown after all workers join). parallelFor and parallelForChunks
 * both dispatch through here so their contracts cannot drift.
 * @p task receives (task_index, worker_id).
 */
void
runTasks(std::size_t jobs, std::size_t num_tasks,
         const std::function<void(std::size_t, std::size_t)> &task)
{
    if (num_tasks == 0)
        return;
    jobs = effectiveJobs(jobs);

    std::vector<std::string> errors(num_tasks);
    // char, not bool: vector<bool> packs bits, and concurrent writes to
    // neighboring indices would race.
    std::vector<char> failed(num_tasks, 0);

    auto run_task = [&](std::size_t index, std::size_t worker) {
        try {
            task(index, worker);
        } catch (const std::exception &error) {
            errors[index] = error.what();
            failed[index] = 1;
        } catch (...) {
            errors[index] = "unknown exception";
            failed[index] = 1;
        }
    };

    if (jobs <= 1 || num_tasks == 1) {
        // Same contract as the threaded path: every task runs, the
        // lowest-index failure is rethrown afterwards.
        for (std::size_t i = 0; i < num_tasks; ++i)
            run_task(i, 0);
    } else {
        std::atomic<std::size_t> next{0};
        auto worker = [&](std::size_t worker_id) {
            for (;;) {
                std::size_t index = next.fetch_add(1);
                if (index >= num_tasks)
                    return;
                run_task(index, worker_id);
            }
        };

        std::vector<std::thread> threads;
        std::size_t num_threads = jobs < num_tasks ? jobs : num_tasks;
        threads.reserve(num_threads);
        try {
            for (std::size_t t = 0; t < num_threads; ++t)
                threads.emplace_back(worker, t);
        } catch (...) {
            // Thread creation failed (e.g. RLIMIT_NPROC): drain what was
            // spawned before rethrowing, or their destructors terminate.
            for (auto &thread : threads)
                thread.join();
            throw;
        }
        for (auto &thread : threads)
            thread.join();
    }

    for (std::size_t i = 0; i < num_tasks; ++i)
        if (failed[i])
            throw std::runtime_error(errors[i]);
}

}  // namespace

void
parallelFor(std::size_t jobs, std::size_t count,
            const std::function<void(std::size_t)> &fn)
{
    runTasks(jobs, count,
             [&fn](std::size_t index, std::size_t) { fn(index); });
}

void
parallelForChunks(std::size_t jobs, std::size_t count,
                  std::size_t chunk_size, const ChunkFn &fn)
{
    if (count == 0)
        return;
    if (chunk_size == 0)
        throw std::invalid_argument("parallelForChunks: chunk_size == 0");
    std::size_t num_chunks = (count + chunk_size - 1) / chunk_size;
    runTasks(jobs, num_chunks,
             [&](std::size_t chunk, std::size_t worker) {
                 std::size_t begin = chunk * chunk_size;
                 std::size_t end = begin + chunk_size;
                 if (end > count)
                     end = count;
                 fn(begin, end, worker);
             });
}

}  // namespace homunculus::common
