/**
 * @file
 * Aligned-column table printer for experiment harnesses.
 *
 * The benchmark binaries print paper-style tables (Tables 2-5) and figure
 * series (Figures 4, 6, 7); this helper keeps the columns aligned without
 * every bench reinventing width logic.
 */
#pragma once

#include <string>
#include <vector>

namespace homunculus::common {

/** Accumulates rows of string cells and renders an aligned ASCII table. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header);

    /** Append one row; width must match the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double cell with @p precision decimals. */
    static std::string cell(double value, int precision = 2);
    static std::string cell(long long value);

    /** Render with a separator under the header. */
    std::string render() const;

    /** Render directly to stdout. */
    void print() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace homunculus::common
