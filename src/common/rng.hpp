/**
 * @file
 * Deterministic random-number utilities.
 *
 * Every stochastic component in Homunculus (dataset synthesis, weight
 * initialization, Bayesian-optimization sampling, bootstrap resampling)
 * draws from an explicitly seeded Rng so that experiments are reproducible
 * bit-for-bit from a single seed. Never use std::rand or ad-hoc engines.
 */
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace homunculus::common {

/**
 * A seeded pseudo-random generator with the sampling helpers the framework
 * needs. Thin wrapper over std::mt19937_64; cheap to copy for forked
 * deterministic sub-streams.
 */
class Rng
{
  public:
    /** Construct from an explicit 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x5EED'F00D'CAFE'BEEFull)
        : engine_(seed)
    {
    }

    /** Derive an independent child stream; deterministic in parent state. */
    Rng fork();

    /** Uniform double in [lo, hi). */
    double uniform(double lo = 0.0, double hi = 1.0);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal (mean 0, stddev 1) scaled/shifted. */
    double gaussian(double mean = 0.0, double stddev = 1.0);

    /** Exponential with the given rate parameter lambda (> 0). */
    double exponential(double lambda);

    /** Pareto-distributed heavy-tail sample with scale xm and shape alpha. */
    double pareto(double xm, double alpha);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Poisson-distributed count with the given mean. */
    std::int64_t poisson(double mean);

    /** Sample an index from an (unnormalized) non-negative weight vector. */
    std::size_t categorical(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of an index permutation [0, n). */
    std::vector<std::size_t> permutation(std::size_t n);

    /** In-place Fisher-Yates shuffle of an arbitrary vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(uniformInt(0, i - 1));
            std::swap(values[i - 1], values[j]);
        }
    }

    /** Expose the raw engine for std distributions when needed. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

}  // namespace homunculus::common
