/**
 * @file
 * Minimal CSV reader/writer used by the data loaders and experiment dumps.
 *
 * Supports numeric tables with an optional header row. Quoting is not
 * needed for our numeric datasets, so fields are plain delimiter-separated.
 */
#pragma once

#include <string>
#include <vector>

namespace homunculus::common {

/** An in-memory CSV table: header (possibly empty) plus numeric rows. */
struct CsvTable
{
    std::vector<std::string> header;
    std::vector<std::vector<double>> rows;

    std::size_t numRows() const { return rows.size(); }
    std::size_t numCols() const
    {
        return rows.empty() ? header.size() : rows.front().size();
    }
};

/**
 * Parse CSV content from a string.
 *
 * @param content full file content
 * @param has_header when true, the first line is kept as column names
 * @return the parsed table; malformed numeric fields raise std::runtime_error
 */
CsvTable parseCsv(const std::string &content, bool has_header);

/** Read and parse a CSV file from disk. Throws std::runtime_error on I/O. */
CsvTable readCsvFile(const std::string &path, bool has_header);

/** Serialize a table back to CSV text (6 significant digits). */
std::string writeCsv(const CsvTable &table);

/** Write a table to disk. Throws std::runtime_error on I/O failure. */
void writeCsvFile(const std::string &path, const CsvTable &table);

}  // namespace homunculus::common
