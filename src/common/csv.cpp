#include "common/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/string_util.hpp"

namespace homunculus::common {

CsvTable
parseCsv(const std::string &content, bool has_header)
{
    CsvTable table;
    std::istringstream in(content);
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        line = trim(line);
        if (line.empty())
            continue;
        std::vector<std::string> fields = split(line, ',');
        if (first && has_header) {
            for (auto &f : fields)
                table.header.push_back(trim(f));
            first = false;
            continue;
        }
        first = false;
        std::vector<double> row;
        row.reserve(fields.size());
        for (const auto &f : fields) {
            try {
                row.push_back(std::stod(trim(f)));
            } catch (const std::exception &) {
                throw std::runtime_error("csv: non-numeric field '" + f + "'");
            }
        }
        if (!table.rows.empty() && row.size() != table.rows.front().size())
            throw std::runtime_error("csv: ragged row widths");
        table.rows.push_back(std::move(row));
    }
    return table;
}

CsvTable
readCsvFile(const std::string &path, bool has_header)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("csv: cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseCsv(buffer.str(), has_header);
}

std::string
writeCsv(const CsvTable &table)
{
    std::ostringstream out;
    out.precision(10);
    if (!table.header.empty())
        out << join(table.header, ",") << "\n";
    for (const auto &row : table.rows) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i > 0)
                out << ",";
            out << row[i];
        }
        out << "\n";
    }
    return out.str();
}

void
writeCsvFile(const std::string &path, const CsvTable &table)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("csv: cannot write '" + path + "'");
    out << writeCsv(table);
}

}  // namespace homunculus::common
