#include "common/string_util.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace homunculus::common {

std::vector<std::string>
split(const std::string &text, char delimiter)
{
    std::vector<std::string> fields;
    std::string current;
    for (char c : text) {
        if (c == delimiter) {
            fields.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    fields.push_back(current);
    return fields;
}

std::string
join(const std::vector<std::string> &parts, const std::string &separator)
{
    std::ostringstream out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out << separator;
        out << parts[i];
    }
    return out.str();
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

std::string
toLower(const std::string &text)
{
    std::string out = text;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return {};
    }
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

std::string
indent(const std::string &text, int spaces)
{
    std::string pad(static_cast<std::size_t>(spaces), ' ');
    std::ostringstream out;
    std::istringstream in(text);
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (!first)
            out << "\n";
        first = false;
        if (!line.empty())
            out << pad << line;
    }
    if (!text.empty() && text.back() == '\n')
        out << "\n";
    return out.str();
}

std::string
replaceAll(std::string text, const std::string &from, const std::string &to)
{
    if (from.empty())
        return text;
    std::size_t pos = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
        text.replace(pos, from.size(), to);
        pos += to.size();
    }
    return text;
}

}  // namespace homunculus::common
