/**
 * @file
 * AVX2 kernel table. This TU (alone) is compiled with -mavx2 — see the
 * per-source COMPILE_OPTIONS block in CMakeLists.txt — so everything
 * lives behind __AVX2__ and the dispatcher only hands these out after
 * __builtin_cpu_supports("avx2") says the host can run them.
 *
 * Exactness notes (the differential suite enforces all of this):
 *  - Saturating MAC chains are per-row in-order; these kernels
 *    vectorize ACROSS rows (one row per lane), so no within-row
 *    reordering ever happens.
 *  - _mm256_madd_epi16 is deliberately not used: it sums adjacent
 *    products before the per-term clamp, which breaks the
 *    rawMin/rawMax saturation semantics.
 *  - KMeans distances and narrow SVM scores are plain int64 sums of
 *    per-term values, so those reductions may reorder freely.
 *  - Shift counts are runtime values (the Q-format's fracBits), hence
 *    _mm256_sra_epi32/16 with a _mm_cvtsi32_si128 count instead of
 *    the immediate forms.
 */
#include "kernels/kernel_api.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace homunculus::kernels {

namespace {

inline __m256i
clamp32(__m256i v, __m256i lo, __m256i hi)
{
    return _mm256_min_epi32(_mm256_max_epi32(v, lo), hi);
}

inline __m256i
clamp16(__m256i v, __m256i lo, __m256i hi)
{
    return _mm256_min_epi16(_mm256_max_epi16(v, lo), hi);
}

void
denseI32Avx2(const DenseI32Args &args)
{
    const __m128i shift = _mm_cvtsi32_si128(args.fracBits);
    const __m256i raw_min = _mm256_set1_epi32(args.rawMin);
    const __m256i raw_max = _mm256_set1_epi32(args.rawMax);
    const __m256i act_lo = _mm256_set1_epi32(args.actLo);
    const __m256i act_hi = _mm256_set1_epi32(args.actHi);
    for (std::size_t out = 0; out < args.outputDim; ++out) {
        const std::int16_t *w = args.weightsT + out * args.inputDim;
        __m256i acc = _mm256_set1_epi32(args.biases[out]);
        for (std::size_t in = 0; in < args.inputDim; ++in) {
            const __m256i weight = _mm256_set1_epi32(w[in]);
            const __m256i iv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(args.input +
                                                  in * kDenseLanes32));
            __m256i product = _mm256_mullo_epi32(iv, weight);
            product = _mm256_sra_epi32(product, shift);
            product = clamp32(product, raw_min, raw_max);
            acc = clamp32(_mm256_add_epi32(acc, product), raw_min,
                          raw_max);
        }
        if (args.clampAct)
            acc = clamp32(acc, act_lo, act_hi);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(args.output +
                                        out * kDenseLanes32),
            acc);
    }
}

void
denseI16Avx2(const DenseI16Args &args)
{
    // 16 int16 lanes per register: the <= 8-bit contract keeps every
    // product <= 2^14 and every post-clamp sum within [-256, 255], so
    // mullo/add never wrap.
    const __m128i shift = _mm_cvtsi32_si128(args.fracBits);
    const __m256i raw_min = _mm256_set1_epi16(args.rawMin);
    const __m256i raw_max = _mm256_set1_epi16(args.rawMax);
    const __m256i act_lo = _mm256_set1_epi16(args.actLo);
    const __m256i act_hi = _mm256_set1_epi16(args.actHi);
    for (std::size_t out = 0; out < args.outputDim; ++out) {
        const std::int8_t *w = args.weightsT + out * args.inputDim;
        __m256i acc = _mm256_set1_epi16(args.biases[out]);
        for (std::size_t in = 0; in < args.inputDim; ++in) {
            const __m256i weight =
                _mm256_set1_epi16(static_cast<std::int16_t>(w[in]));
            const __m256i iv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(args.input +
                                                  in * kDenseLanes16));
            __m256i product = _mm256_mullo_epi16(iv, weight);
            product = _mm256_sra_epi16(product, shift);
            product = clamp16(product, raw_min, raw_max);
            acc = clamp16(_mm256_add_epi16(acc, product), raw_min,
                          raw_max);
        }
        if (args.clampAct)
            acc = clamp16(acc, act_lo, act_hi);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(args.output +
                                        out * kDenseLanes16),
            acc);
    }
}

void
argmaxI32Avx2(const std::int32_t *scores, std::size_t classes,
              int *labels)
{
    __m256i best_score = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(scores));
    __m256i best_index = _mm256_setzero_si256();
    for (std::size_t c = 1; c < classes; ++c) {
        const __m256i sc = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(scores +
                                              c * kDenseLanes32));
        // Strict > keeps the earlier class on ties, like the scalar
        // first-max scan.
        const __m256i gt = _mm256_cmpgt_epi32(sc, best_score);
        best_score = _mm256_blendv_epi8(best_score, sc, gt);
        best_index = _mm256_blendv_epi8(
            best_index, _mm256_set1_epi32(static_cast<int>(c)), gt);
    }
    alignas(32) std::int32_t out[kDenseLanes32];
    _mm256_store_si256(reinterpret_cast<__m256i *>(out), best_index);
    for (std::size_t lane = 0; lane < kDenseLanes32; ++lane)
        labels[lane] = out[lane];
}

void
argmaxI16Avx2(const std::int16_t *scores, std::size_t classes,
              int *labels)
{
    __m256i best_score = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(scores));
    __m256i best_index = _mm256_setzero_si256();
    for (std::size_t c = 1; c < classes; ++c) {
        const __m256i sc = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(scores +
                                              c * kDenseLanes16));
        const __m256i gt = _mm256_cmpgt_epi16(sc, best_score);
        best_score = _mm256_blendv_epi8(best_score, sc, gt);
        best_index = _mm256_blendv_epi8(
            best_index,
            _mm256_set1_epi16(static_cast<std::int16_t>(c)), gt);
    }
    alignas(32) std::int16_t out[kDenseLanes16];
    _mm256_store_si256(reinterpret_cast<__m256i *>(out), best_index);
    for (std::size_t lane = 0; lane < kDenseLanes16; ++lane)
        labels[lane] = out[lane];
}

void
treeTraverseAvx2(const TreeTraverseArgs &args)
{
    const __m256i minus_one = _mm256_set1_epi32(-1);
    const __m256i lane_offsets =
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    __m256i index = _mm256_setzero_si256();
    for (;;) {
        const __m256i left =
            _mm256_i32gather_epi32(args.nodeLeft, index, 4);
        // active = this lane still sits on an internal node.
        const __m256i active = _mm256_cmpgt_epi32(left, minus_one);
        if (_mm256_movemask_epi8(active) == 0)
            break;
        const __m256i feature =
            _mm256_i32gather_epi32(args.nodeFeature, index, 4);
        const __m256i threshold =
            _mm256_i32gather_epi32(args.nodeThreshold, index, 4);
        const __m256i right =
            _mm256_i32gather_epi32(args.nodeRight, index, 4);
        // value = input[feature * kTreeLanes + lane]; masked so lanes
        // parked on a leaf never dereference the leaf's feature slot.
        const __m256i vindex = _mm256_add_epi32(
            _mm256_slli_epi32(feature, 3), lane_offsets);
        const __m256i value = _mm256_mask_i32gather_epi32(
            _mm256_setzero_si256(), args.input, vindex, active, 4);
        // go_left = value <= threshold; cmpgt gives value > threshold.
        const __m256i gt = _mm256_cmpgt_epi32(value, threshold);
        const __m256i next = _mm256_blendv_epi8(left, right, gt);
        index = _mm256_blendv_epi8(index, next, active);
    }
    const __m256i label =
        _mm256_i32gather_epi32(args.nodeLabel, index, 4);
    alignas(32) std::int32_t out[kTreeLanes];
    _mm256_store_si256(reinterpret_cast<__m256i *>(out), label);
    for (std::size_t lane = 0; lane < kTreeLanes; ++lane)
        args.labels[lane] = out[lane];
}

/** Horizontal sum of 4 int64 lanes. */
inline std::int64_t
hsum64(__m256i v)
{
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), v);
    return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

std::int64_t
squaredDistAvx2(const std::int32_t *q, const std::int32_t *centroid,
                std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t f = 0;
    for (; f + 8 <= n; f += 8) {
        const __m256i qv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(q + f));
        const __m256i cv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(centroid + f));
        const __m256i d = _mm256_sub_epi32(qv, cv);
        // 32x32 -> 64 squares: mul_epi32 consumes the even lanes; a
        // 32-bit logical shift exposes the odd lanes (mul_epi32
        // sign-extends from bit 31 of each low dword, so the value is
        // preserved).
        const __m256i even = _mm256_mul_epi32(d, d);
        const __m256i odd_src = _mm256_srli_epi64(d, 32);
        const __m256i odd = _mm256_mul_epi32(odd_src, odd_src);
        acc = _mm256_add_epi64(acc, even);
        acc = _mm256_add_epi64(acc, odd);
    }
    std::int64_t dist = hsum64(acc);
    for (; f < n; ++f) {
        std::int64_t d = static_cast<std::int64_t>(q[f]) - centroid[f];
        dist += d * d;
    }
    return dist;
}

int
kmeansArgminAvx2(const std::int32_t *q, const std::int32_t *centroids,
                 std::size_t k, std::size_t n)
{
    std::int64_t best_dist = 0;
    int best = 0;
    const std::int32_t *centroid = centroids;
    for (std::size_t c = 0; c < k; ++c) {
        std::int64_t dist = squaredDistAvx2(q, centroid, n);
        if (c == 0 || dist < best_dist) {
            best_dist = dist;
            best = static_cast<int>(c);
        }
        centroid += n;
    }
    return best;
}

int
svmArgmaxNarrowAvx2(const std::int32_t *q, const std::int32_t *weights,
                    const std::int64_t *biases, std::size_t classes,
                    std::size_t n, int frac_bits, std::int32_t raw_min,
                    std::int32_t raw_max)
{
    const __m128i shift = _mm_cvtsi32_si128(frac_bits);
    const __m256i lo = _mm256_set1_epi32(raw_min);
    const __m256i hi = _mm256_set1_epi32(raw_max);
    std::int64_t best_score = 0;
    int best = 0;
    const std::int32_t *w = weights;
    for (std::size_t c = 0; c < classes; ++c) {
        __m256i acc = _mm256_setzero_si256();
        std::size_t f = 0;
        for (; f + 8 <= n; f += 8) {
            const __m256i qv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(q + f));
            const __m256i wv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(w + f));
            __m256i product = _mm256_mullo_epi32(qv, wv);
            product = _mm256_sra_epi32(product, shift);
            product = clamp32(product, lo, hi);
            // Widen the 8 clamped terms to int64 and accumulate; the
            // score sum is order-free (plain addition, no saturation).
            acc = _mm256_add_epi64(
                acc, _mm256_cvtepi32_epi64(
                         _mm256_castsi256_si128(product)));
            acc = _mm256_add_epi64(
                acc, _mm256_cvtepi32_epi64(
                         _mm256_extracti128_si256(product, 1)));
        }
        std::int64_t score = biases[c] + hsum64(acc);
        for (; f < n; ++f) {
            std::int32_t product = (q[f] * w[f]) >> frac_bits;
            product = std::min(std::max(product, raw_min), raw_max);
            score += product;
        }
        if (c == 0 || score > best_score) {
            best_score = score;
            best = static_cast<int>(c);
        }
        w += n;
    }
    return best;
}

void
rangeLowerBoundAvx2(const std::int32_t *keys, std::size_t count,
                    const std::int32_t *ordered_hi, std::size_t n,
                    std::uint32_t *out)
{
    if (n == 0) {
        std::fill(out, out + count, 0u);
        return;
    }
    std::size_t i = 0;
    for (; i + 8 <= count; i += 8) {
        const __m256i key = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(keys + i));
        // Branchless uniform lower_bound: every lane probes the same
        // offsets (len is lane-independent), so the whole search is
        // eight gathers instead of eight branchy binary searches.
        __m256i base = _mm256_setzero_si256();
        std::size_t len = n;
        while (len > 1) {
            const std::size_t half = len / 2;
            const __m256i probe = _mm256_i32gather_epi32(
                ordered_hi,
                _mm256_add_epi32(
                    base,
                    _mm256_set1_epi32(static_cast<int>(half - 1))),
                4);
            const __m256i lt = _mm256_cmpgt_epi32(key, probe);
            base = _mm256_add_epi32(
                base,
                _mm256_and_si256(
                    lt, _mm256_set1_epi32(static_cast<int>(half))));
            len -= half;
        }
        const __m256i probe =
            _mm256_i32gather_epi32(ordered_hi, base, 4);
        // += 1 where ordered_hi[base] < key (lt is all-ones = -1).
        const __m256i lt = _mm256_cmpgt_epi32(key, probe);
        base = _mm256_sub_epi32(base, lt);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i), base);
    }
    for (; i < count; ++i) {
        const std::int32_t *it =
            std::lower_bound(ordered_hi, ordered_hi + n, keys[i]);
        out[i] = static_cast<std::uint32_t>(it - ordered_hi);
    }
}

}  // namespace

const KernelOps *
avx2Ops()
{
    static const KernelOps ops = [] {
        KernelOps table;
        table.target = KernelTarget::kAvx2;
        table.name = "avx2";
        table.denseI32 = denseI32Avx2;
        table.denseI16 = denseI16Avx2;
        table.argmaxI32 = argmaxI32Avx2;
        table.argmaxI16 = argmaxI16Avx2;
        table.treeTraverse = treeTraverseAvx2;
        table.squaredDist = squaredDistAvx2;
        table.kmeansArgmin = kmeansArgminAvx2;
        table.svmArgmaxNarrow = svmArgmaxNarrowAvx2;
        table.rangeLowerBound = rangeLowerBoundAvx2;
        return table;
    }();
    return &ops;
}

}  // namespace homunculus::kernels

#else  // !__AVX2__

namespace homunculus::kernels {

const KernelOps *
avx2Ops()
{
    return nullptr;  // TU built without AVX2 support.
}

}  // namespace homunculus::kernels

#endif
