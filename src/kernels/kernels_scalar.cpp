/**
 * @file
 * The scalar kernel table: the portable semantic reference every SIMD
 * target is differentially held to (tests/test_kernels.cpp).
 *
 * These loops mirror ir::executeIr / ExecutablePlan's interpreter
 * semantics term for term — product, renormalizing shift, product
 * clamp, accumulate clamp, in that order per row — so "bit-identical
 * to scalar" and "bit-identical to the interpreter" are the same
 * statement. They are also what the dispatcher patches into any ISA
 * table's null entries, so a partial SIMD target degrades to this, not
 * to undefined behavior.
 */
#include <algorithm>

#include "kernels/kernel_api.hpp"

namespace homunculus::kernels {

namespace {

void
denseI32Scalar(const DenseI32Args &args)
{
    constexpr std::size_t kLanes = kDenseLanes32;
    for (std::size_t out = 0; out < args.outputDim; ++out) {
        const std::int16_t *w = args.weightsT + out * args.inputDim;
        std::int32_t acc[kLanes];
        for (std::size_t lane = 0; lane < kLanes; ++lane)
            acc[lane] = args.biases[out];
        for (std::size_t in = 0; in < args.inputDim; ++in) {
            const std::int32_t weight = w[in];
            const std::int32_t *iv = args.input + in * kLanes;
            for (std::size_t lane = 0; lane < kLanes; ++lane) {
                std::int32_t product =
                    (iv[lane] * weight) >> args.fracBits;
                product = std::min(std::max(product, args.rawMin),
                                   args.rawMax);
                std::int32_t sum = acc[lane] + product;
                acc[lane] = std::min(std::max(sum, args.rawMin),
                                     args.rawMax);
            }
        }
        std::int32_t *ov = args.output + out * kLanes;
        if (args.clampAct) {
            for (std::size_t lane = 0; lane < kLanes; ++lane)
                ov[lane] = std::min(std::max(acc[lane], args.actLo),
                                    args.actHi);
        } else {
            for (std::size_t lane = 0; lane < kLanes; ++lane)
                ov[lane] = acc[lane];
        }
    }
}

void
denseI16Scalar(const DenseI16Args &args)
{
    // All-int16 arithmetic; exact for <= 8-bit formats (|input|,
    // |weight| <= 2^7 so products stay <= 2^14 and post-clamp sums
    // stay within [-256, 255] — no int16 step can overflow).
    constexpr std::size_t kLanes = kDenseLanes16;
    for (std::size_t out = 0; out < args.outputDim; ++out) {
        const std::int8_t *w = args.weightsT + out * args.inputDim;
        std::int16_t acc[kLanes];
        for (std::size_t lane = 0; lane < kLanes; ++lane)
            acc[lane] = args.biases[out];
        for (std::size_t in = 0; in < args.inputDim; ++in) {
            const std::int16_t weight = w[in];
            const std::int16_t *iv = args.input + in * kLanes;
            for (std::size_t lane = 0; lane < kLanes; ++lane) {
                auto product = static_cast<std::int16_t>(
                    static_cast<std::int16_t>(iv[lane] * weight) >>
                    args.fracBits);
                product = std::min(std::max(product, args.rawMin),
                                   args.rawMax);
                auto sum = static_cast<std::int16_t>(acc[lane] + product);
                acc[lane] = std::min(std::max(sum, args.rawMin),
                                     args.rawMax);
            }
        }
        std::int16_t *ov = args.output + out * kLanes;
        if (args.clampAct) {
            for (std::size_t lane = 0; lane < kLanes; ++lane)
                ov[lane] = std::min(std::max(acc[lane], args.actLo),
                                    args.actHi);
        } else {
            for (std::size_t lane = 0; lane < kLanes; ++lane)
                ov[lane] = acc[lane];
        }
    }
}

void
argmaxI32Scalar(const std::int32_t *scores, std::size_t classes,
                int *labels)
{
    constexpr std::size_t kLanes = kDenseLanes32;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < classes; ++c)
            if (scores[c * kLanes + lane] > scores[best * kLanes + lane])
                best = c;
        labels[lane] = static_cast<int>(best);
    }
}

void
argmaxI16Scalar(const std::int16_t *scores, std::size_t classes,
                int *labels)
{
    constexpr std::size_t kLanes = kDenseLanes16;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < classes; ++c)
            if (scores[c * kLanes + lane] > scores[best * kLanes + lane])
                best = c;
        labels[lane] = static_cast<int>(best);
    }
}

void
treeTraverseScalar(const TreeTraverseArgs &args)
{
    for (std::size_t lane = 0; lane < kTreeLanes; ++lane) {
        std::size_t index = 0;
        while (args.nodeLeft[index] >= 0) {
            auto feature =
                static_cast<std::size_t>(args.nodeFeature[index]);
            bool go_left = args.input[feature * kTreeLanes + lane] <=
                           args.nodeThreshold[index];
            index = static_cast<std::size_t>(
                go_left ? args.nodeLeft[index] : args.nodeRight[index]);
        }
        args.labels[lane] = args.nodeLabel[index];
    }
}

std::int64_t
squaredDistScalar(const std::int32_t *q, const std::int32_t *centroid,
                  std::size_t n)
{
    std::int64_t dist = 0;
    for (std::size_t f = 0; f < n; ++f) {
        std::int64_t d = static_cast<std::int64_t>(q[f]) - centroid[f];
        dist += d * d;
    }
    return dist;
}

int
kmeansArgminScalar(const std::int32_t *q, const std::int32_t *centroids,
                   std::size_t k, std::size_t n)
{
    std::int64_t best_dist = 0;
    int best = 0;
    const std::int32_t *centroid = centroids;
    for (std::size_t c = 0; c < k; ++c) {
        std::int64_t dist = squaredDistScalar(q, centroid, n);
        if (c == 0 || dist < best_dist) {
            best_dist = dist;
            best = static_cast<int>(c);
        }
        centroid += n;
    }
    return best;
}

int
svmArgmaxNarrowScalar(const std::int32_t *q, const std::int32_t *weights,
                      const std::int64_t *biases, std::size_t classes,
                      std::size_t n, int frac_bits, std::int32_t raw_min,
                      std::int32_t raw_max)
{
    std::int64_t best_score = 0;
    int best = 0;
    const std::int32_t *w = weights;
    for (std::size_t c = 0; c < classes; ++c) {
        std::int64_t score = biases[c];
        for (std::size_t f = 0; f < n; ++f) {
            // Narrow contract: |q|, |w| <= 2^15, so the product fits
            // int32 exactly and the clamp runs in int32 lanes.
            std::int32_t product = (q[f] * w[f]) >> frac_bits;
            product = std::min(std::max(product, raw_min), raw_max);
            score += product;
        }
        if (c == 0 || score > best_score) {
            best_score = score;
            best = static_cast<int>(c);
        }
        w += n;
    }
    return best;
}

void
rangeLowerBoundScalar(const std::int32_t *keys, std::size_t count,
                      const std::int32_t *ordered_hi, std::size_t n,
                      std::uint32_t *out)
{
    for (std::size_t i = 0; i < count; ++i) {
        const std::int32_t *it =
            std::lower_bound(ordered_hi, ordered_hi + n, keys[i]);
        out[i] = static_cast<std::uint32_t>(it - ordered_hi);
    }
}

}  // namespace

const KernelOps *
scalarOps()
{
    static const KernelOps ops = [] {
        KernelOps table;
        table.target = KernelTarget::kScalar;
        table.name = "scalar";
        table.denseI32 = denseI32Scalar;
        table.denseI16 = denseI16Scalar;
        table.argmaxI32 = argmaxI32Scalar;
        table.argmaxI16 = argmaxI16Scalar;
        table.treeTraverse = treeTraverseScalar;
        table.squaredDist = squaredDistScalar;
        table.kmeansArgmin = kmeansArgminScalar;
        table.svmArgmaxNarrow = svmArgmaxNarrowScalar;
        table.rangeLowerBound = rangeLowerBoundScalar;
        return table;
    }();
    return &ops;
}

}  // namespace homunculus::kernels
