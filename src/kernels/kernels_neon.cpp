/**
 * @file
 * NEON kernel table (AArch64). Same exactness contract as the AVX2 TU:
 * vectorize across rows only, clamp every term, never reorder a
 * saturating chain. NEON has no gather, so the lookup-heavy kernels
 * (tree traversal, MAT range-match) stay null here and the dispatcher
 * patches them with the scalar reference — a partial table is a valid
 * table.
 *
 * Note vshlq with a negative shift count is NEON's arithmetic
 * right-shift-by-register; it truncates toward negative infinity
 * exactly like the scalar `>>` on GCC/Clang.
 */
#include "kernels/kernel_api.hpp"

#if defined(__ARM_NEON) || defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>

namespace homunculus::kernels {

namespace {

void
denseI32Neon(const DenseI32Args &args)
{
    const int32x4_t shift = vdupq_n_s32(-args.fracBits);
    const int32x4_t raw_min = vdupq_n_s32(args.rawMin);
    const int32x4_t raw_max = vdupq_n_s32(args.rawMax);
    const int32x4_t act_lo = vdupq_n_s32(args.actLo);
    const int32x4_t act_hi = vdupq_n_s32(args.actHi);
    for (std::size_t out = 0; out < args.outputDim; ++out) {
        const std::int16_t *w = args.weightsT + out * args.inputDim;
        int32x4_t acc0 = vdupq_n_s32(args.biases[out]);
        int32x4_t acc1 = acc0;
        for (std::size_t in = 0; in < args.inputDim; ++in) {
            const int32x4_t weight = vdupq_n_s32(w[in]);
            const std::int32_t *iv = args.input + in * kDenseLanes32;
            int32x4_t p0 = vmulq_s32(vld1q_s32(iv), weight);
            int32x4_t p1 = vmulq_s32(vld1q_s32(iv + 4), weight);
            p0 = vshlq_s32(p0, shift);
            p1 = vshlq_s32(p1, shift);
            p0 = vminq_s32(vmaxq_s32(p0, raw_min), raw_max);
            p1 = vminq_s32(vmaxq_s32(p1, raw_min), raw_max);
            acc0 = vminq_s32(vmaxq_s32(vaddq_s32(acc0, p0), raw_min),
                             raw_max);
            acc1 = vminq_s32(vmaxq_s32(vaddq_s32(acc1, p1), raw_min),
                             raw_max);
        }
        if (args.clampAct) {
            acc0 = vminq_s32(vmaxq_s32(acc0, act_lo), act_hi);
            acc1 = vminq_s32(vmaxq_s32(acc1, act_lo), act_hi);
        }
        std::int32_t *ov = args.output + out * kDenseLanes32;
        vst1q_s32(ov, acc0);
        vst1q_s32(ov + 4, acc1);
    }
}

void
denseI16Neon(const DenseI16Args &args)
{
    const int16x8_t shift = vdupq_n_s16(
        static_cast<std::int16_t>(-args.fracBits));
    const int16x8_t raw_min = vdupq_n_s16(args.rawMin);
    const int16x8_t raw_max = vdupq_n_s16(args.rawMax);
    const int16x8_t act_lo = vdupq_n_s16(args.actLo);
    const int16x8_t act_hi = vdupq_n_s16(args.actHi);
    for (std::size_t out = 0; out < args.outputDim; ++out) {
        const std::int8_t *w = args.weightsT + out * args.inputDim;
        int16x8_t acc0 = vdupq_n_s16(args.biases[out]);
        int16x8_t acc1 = acc0;
        for (std::size_t in = 0; in < args.inputDim; ++in) {
            const int16x8_t weight = vdupq_n_s16(w[in]);
            const std::int16_t *iv = args.input + in * kDenseLanes16;
            int16x8_t p0 = vmulq_s16(vld1q_s16(iv), weight);
            int16x8_t p1 = vmulq_s16(vld1q_s16(iv + 8), weight);
            p0 = vshlq_s16(p0, shift);
            p1 = vshlq_s16(p1, shift);
            p0 = vminq_s16(vmaxq_s16(p0, raw_min), raw_max);
            p1 = vminq_s16(vmaxq_s16(p1, raw_min), raw_max);
            acc0 = vminq_s16(vmaxq_s16(vaddq_s16(acc0, p0), raw_min),
                             raw_max);
            acc1 = vminq_s16(vmaxq_s16(vaddq_s16(acc1, p1), raw_min),
                             raw_max);
        }
        if (args.clampAct) {
            acc0 = vminq_s16(vmaxq_s16(acc0, act_lo), act_hi);
            acc1 = vminq_s16(vmaxq_s16(acc1, act_lo), act_hi);
        }
        std::int16_t *ov = args.output + out * kDenseLanes16;
        vst1q_s16(ov, acc0);
        vst1q_s16(ov + 8, acc1);
    }
}

std::int64_t
squaredDistNeon(const std::int32_t *q, const std::int32_t *centroid,
                std::size_t n)
{
    int64x2_t acc = vdupq_n_s64(0);
    std::size_t f = 0;
    for (; f + 4 <= n; f += 4) {
        const int32x4_t d =
            vsubq_s32(vld1q_s32(q + f), vld1q_s32(centroid + f));
        const int32x2_t lo = vget_low_s32(d);
        const int32x2_t hi = vget_high_s32(d);
        acc = vaddq_s64(acc, vmull_s32(lo, lo));
        acc = vaddq_s64(acc, vmull_s32(hi, hi));
    }
    std::int64_t dist = vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1);
    for (; f < n; ++f) {
        std::int64_t d = static_cast<std::int64_t>(q[f]) - centroid[f];
        dist += d * d;
    }
    return dist;
}

int
kmeansArgminNeon(const std::int32_t *q, const std::int32_t *centroids,
                 std::size_t k, std::size_t n)
{
    std::int64_t best_dist = 0;
    int best = 0;
    const std::int32_t *centroid = centroids;
    for (std::size_t c = 0; c < k; ++c) {
        std::int64_t dist = squaredDistNeon(q, centroid, n);
        if (c == 0 || dist < best_dist) {
            best_dist = dist;
            best = static_cast<int>(c);
        }
        centroid += n;
    }
    return best;
}

int
svmArgmaxNarrowNeon(const std::int32_t *q, const std::int32_t *weights,
                    const std::int64_t *biases, std::size_t classes,
                    std::size_t n, int frac_bits, std::int32_t raw_min,
                    std::int32_t raw_max)
{
    const int32x4_t shift = vdupq_n_s32(-frac_bits);
    const int32x4_t lo = vdupq_n_s32(raw_min);
    const int32x4_t hi = vdupq_n_s32(raw_max);
    std::int64_t best_score = 0;
    int best = 0;
    const std::int32_t *w = weights;
    for (std::size_t c = 0; c < classes; ++c) {
        int64x2_t acc = vdupq_n_s64(0);
        std::size_t f = 0;
        for (; f + 4 <= n; f += 4) {
            int32x4_t product =
                vmulq_s32(vld1q_s32(q + f), vld1q_s32(w + f));
            product = vshlq_s32(product, shift);
            product = vminq_s32(vmaxq_s32(product, lo), hi);
            acc = vaddw_s32(acc, vget_low_s32(product));
            acc = vaddw_s32(acc, vget_high_s32(product));
        }
        std::int64_t score = biases[c] + vgetq_lane_s64(acc, 0) +
                             vgetq_lane_s64(acc, 1);
        for (; f < n; ++f) {
            std::int32_t product = (q[f] * w[f]) >> frac_bits;
            product = std::min(std::max(product, raw_min), raw_max);
            score += product;
        }
        if (c == 0 || score > best_score) {
            best_score = score;
            best = static_cast<int>(c);
        }
        w += n;
    }
    return best;
}

}  // namespace

const KernelOps *
neonOps()
{
    static const KernelOps ops = [] {
        KernelOps table;
        table.target = KernelTarget::kNeon;
        table.name = "neon";
        table.denseI32 = denseI32Neon;
        table.denseI16 = denseI16Neon;
        table.squaredDist = squaredDistNeon;
        table.kmeansArgmin = kmeansArgminNeon;
        table.svmArgmaxNarrow = svmArgmaxNarrowNeon;
        // argmax / treeTraverse / rangeLowerBound: no NEON gather —
        // the dispatcher patches in the scalar reference.
        return table;
    }();
    return &ops;
}

}  // namespace homunculus::kernels

#else  // !__ARM_NEON

namespace homunculus::kernels {

const KernelOps *
neonOps()
{
    return nullptr;  // TU built without NEON support.
}

}  // namespace homunculus::kernels

#endif
