/**
 * @file
 * The kernel ABI between ExecutablePlan / MatPipeline and the
 * ISA-specific kernel TUs.
 *
 * Every hot loop the plan executes — the narrow-format GEMM lanes, the
 * blocked tree descent, the KMeans/SVM reductions, the MAT range-match
 * binary search — is expressed here as a C-style function pointer over
 * flat argument structs. `KernelDispatch` (kernel_dispatch.hpp) probes
 * the host once and hands out one immutable `KernelOps` table; the
 * callers never name an ISA.
 *
 * The contract every implementation must honor: **bit-identical to the
 * scalar reference** (kernels_scalar.cpp, which itself mirrors
 * ir::executeIr's saturating term order). That means the same
 * rawMin/rawMax clamp after every product and after every accumulate,
 * the same first-match/first-min tie-breaking, and the same per-row
 * term order — a SIMD kernel may reorder only across rows (lanes),
 * never within a row's saturating chain. tests/test_kernels.cpp holds
 * every registered target to this differentially.
 *
 * This header is intrinsics-free on purpose: it is included from
 * baseline-ISA TUs (exec_plan.cpp, mat_pipeline.cpp), while the
 * per-ISA TUs are the only ones compiled with -mavx2 etc. (see the
 * per-source COMPILE_OPTIONS block in CMakeLists.txt).
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace homunculus::kernels {

/** A dispatchable ISA target. */
enum class KernelTarget
{
    kScalar = 0,  ///< portable reference (always available).
    kAvx2,        ///< x86-64 AVX2 (256-bit integer SIMD).
    kNeon,        ///< AArch64 NEON (128-bit integer SIMD).
};

/** Number of distinct KernelTarget values (table sizing). */
constexpr std::size_t kNumKernelTargets = 3;

/** Rows processed together by the int32-arithmetic dense kernel: one
 *  256-bit register of int32 lanes. Inputs/outputs are lane-interleaved
 *  (element `i` of lane `l` lives at `i * kDenseLanes32 + l`). */
constexpr std::size_t kDenseLanes32 = 8;

/** Rows processed together by the int16-arithmetic dense kernel: one
 *  256-bit register of int16 lanes (the int8-weight fast path). */
constexpr std::size_t kDenseLanes16 = 16;

/** Rows traversed together by the blocked tree kernel. */
constexpr std::size_t kTreeLanes = 8;

/**
 * One dense layer over kDenseLanes32 interleaved rows, int32 MACs
 * (exact for formats of <= 16 total bits: |raw| <= 2^15 so a product
 * fits int32). Weights are repacked to int16 at plan compile; each
 * per-input weight is broadcast across the lanes. Per lane, per output:
 *   acc = bias
 *   for in: product = (input * weight) >> fracBits;
 *           product = clamp(product, rawMin, rawMax);
 *           acc = clamp(acc + product, rawMin, rawMax)
 *   if clampAct: acc = clamp(acc, actLo, actHi)
 */
struct DenseI32Args
{
    const std::int32_t *input;     ///< inputDim x lanes, interleaved.
    std::int32_t *output;          ///< outputDim x lanes, interleaved.
    const std::int16_t *weightsT;  ///< [out * inputDim + in] panels.
    const std::int32_t *biases;    ///< one per output.
    std::size_t inputDim = 0;
    std::size_t outputDim = 0;
    int fracBits = 0;
    std::int32_t rawMin = 0;
    std::int32_t rawMax = 0;
    bool clampAct = false;         ///< hidden-layer activation window.
    std::int32_t actLo = 0;
    std::int32_t actHi = 0;
};

/**
 * One dense layer over kDenseLanes16 interleaved rows, all-int16
 * arithmetic (exact for formats of <= 8 total bits: |raw| <= 2^7, so a
 * product fits int16 (<= 2^14) and a post-clamp sum stays within
 * [-256, 255]). Weights are repacked to int8, biases to int16; the MAC
 * chain semantics match DenseI32Args exactly.
 */
struct DenseI16Args
{
    const std::int16_t *input;     ///< inputDim x lanes, interleaved.
    std::int16_t *output;          ///< outputDim x lanes, interleaved.
    const std::int8_t *weightsT;   ///< [out * inputDim + in] panels.
    const std::int16_t *biases;    ///< one per output.
    std::size_t inputDim = 0;
    std::size_t outputDim = 0;
    int fracBits = 0;
    std::int16_t rawMin = 0;
    std::int16_t rawMax = 0;
    bool clampAct = false;
    std::int16_t actLo = 0;
    std::int16_t actHi = 0;
};

/**
 * Blocked tree traversal: kTreeLanes rows descend the SoA node arrays
 * together (compare+select per level) until every lane sits on a leaf
 * (left < 0). `input` is lane-interleaved quantized features
 * (`feature * kTreeLanes + lane`); per lane the descent replays
 * `go_left = q[feature[i]] <= threshold[i]` exactly.
 */
struct TreeTraverseArgs
{
    const std::int32_t *input;          ///< dim x kTreeLanes, interleaved.
    const std::int32_t *nodeFeature;
    const std::int32_t *nodeThreshold;
    const std::int32_t *nodeLeft;       ///< < 0 == leaf.
    const std::int32_t *nodeRight;
    const std::int32_t *nodeLabel;
    int *labels;                        ///< kTreeLanes outputs.
};

/**
 * The per-target kernel table. Entries an ISA TU leaves null are
 * patched with the scalar reference at dispatch-resolution time, so a
 * target may accelerate only the kernels its ISA is good at.
 */
struct KernelOps
{
    KernelTarget target = KernelTarget::kScalar;
    const char *name = "scalar";

    void (*denseI32)(const DenseI32Args &args) = nullptr;
    void (*denseI16)(const DenseI16Args &args) = nullptr;

    /** Fused arg-max epilogue over lane-interleaved final-layer scores
     *  (classes x lanes); strict >, first class wins ties. Writes one
     *  label per lane. */
    void (*argmaxI32)(const std::int32_t *scores, std::size_t classes,
                      int *labels) = nullptr;
    void (*argmaxI16)(const std::int16_t *scores, std::size_t classes,
                      int *labels) = nullptr;

    void (*treeTraverse)(const TreeTraverseArgs &args) = nullptr;

    /** Sum of squared int64 differences over n int32 elements (exact
     *  for narrow formats: |q - c| fits int32). */
    std::int64_t (*squaredDist)(const std::int32_t *q,
                                const std::int32_t *centroid,
                                std::size_t n) = nullptr;

    /** Fused KMeans distance/arg-min over k contiguous centroids of
     *  n elements each; strict <, first centroid wins ties. */
    int (*kmeansArgmin)(const std::int32_t *q,
                        const std::int32_t *centroids, std::size_t k,
                        std::size_t n) = nullptr;

    /** Fused SVM score/arg-max for narrow formats: per class,
     *  score = bias + sum(clamp((q * w) >> fracBits, rawMin, rawMax))
     *  as plain int64 addition; strict >, first class wins ties. */
    int (*svmArgmaxNarrow)(const std::int32_t *q,
                           const std::int32_t *weights,
                           const std::int64_t *biases,
                           std::size_t classes, std::size_t n,
                           int fracBits, std::int32_t rawMin,
                           std::int32_t rawMax) = nullptr;

    /** Batched MAT range-match: for each of `count` keys, the index of
     *  the first orderedHi[j] >= key (n when none) — std::lower_bound
     *  over a whole row chunk per table stage. */
    void (*rangeLowerBound)(const std::int32_t *keys, std::size_t count,
                            const std::int32_t *orderedHi, std::size_t n,
                            std::uint32_t *out) = nullptr;
};

/** Per-TU table accessors (nullptr when the TU was compiled without
 *  its ISA). Explicit function references instead of self-registering
 *  static initializers: a STATIC-library TU nothing names gets dropped
 *  by the linker, silently losing its registration. */
const KernelOps *scalarOps();
const KernelOps *avx2Ops();
const KernelOps *neonOps();

}  // namespace homunculus::kernels
