#include "kernels/kernel_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace homunculus::kernels {

namespace {

/** Does the CPU we are running on report this target's ISA? (Whether a
 *  table was compiled in is a separate question — see rawOps.) */
bool
hostSupports(KernelTarget target)
{
    switch (target) {
      case KernelTarget::kScalar:
        return true;
      case KernelTarget::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
      case KernelTarget::kNeon:
        // NEON is baseline on AArch64; 32-bit ARM builds advertise it
        // via __ARM_NEON at compile time (no runtime probe needed).
#if defined(__aarch64__) || defined(__ARM_NEON)
        return true;
#else
        return false;
#endif
    }
    return false;
}

/** The table a target's TU compiled in (nullptr when built without
 *  that ISA). */
const KernelOps *
rawOps(KernelTarget target)
{
    switch (target) {
      case KernelTarget::kScalar: return scalarOps();
      case KernelTarget::kAvx2: return avx2Ops();
      case KernelTarget::kNeon: return neonOps();
    }
    return nullptr;
}

struct DispatchState
{
    std::mutex mutex;
    /** The resolved table; nullptr = not yet resolved. The pointer is
     *  the only cross-thread handoff: once published (release), the
     *  pointee is immutable. */
    std::atomic<const KernelOps *> active{nullptr};
    const char *provenance = "auto";
    bool forced = false;
    KernelTarget forcedTarget = KernelTarget::kScalar;
    /** Per-target tables with null entries patched from scalar. */
    KernelOps completed[kNumKernelTargets];
    bool completedBuilt[kNumKernelTargets] = {};
};

DispatchState &
state()
{
    static DispatchState s;
    return s;
}

/** The completed (scalar-patched) table for @p target; nullptr when
 *  the target is unavailable. Caller holds the state mutex. */
const KernelOps *
completedLocked(DispatchState &s, KernelTarget target)
{
    if (!hostSupports(target))
        return nullptr;
    const KernelOps *raw = rawOps(target);
    if (raw == nullptr)
        return nullptr;
    auto slot = static_cast<std::size_t>(target);
    if (!s.completedBuilt[slot]) {
        KernelOps table = *scalarOps();  // every entry non-null.
        table.target = raw->target;
        table.name = raw->name;
        if (raw->denseI32) table.denseI32 = raw->denseI32;
        if (raw->denseI16) table.denseI16 = raw->denseI16;
        if (raw->argmaxI32) table.argmaxI32 = raw->argmaxI32;
        if (raw->argmaxI16) table.argmaxI16 = raw->argmaxI16;
        if (raw->treeTraverse) table.treeTraverse = raw->treeTraverse;
        if (raw->squaredDist) table.squaredDist = raw->squaredDist;
        if (raw->kmeansArgmin) table.kmeansArgmin = raw->kmeansArgmin;
        if (raw->svmArgmaxNarrow)
            table.svmArgmaxNarrow = raw->svmArgmaxNarrow;
        if (raw->rangeLowerBound)
            table.rangeLowerBound = raw->rangeLowerBound;
        s.completed[slot] = table;
        s.completedBuilt[slot] = true;
    }
    return &s.completed[slot];
}

KernelTarget
bestAvailable()
{
    if (hostSupports(KernelTarget::kAvx2) &&
        rawOps(KernelTarget::kAvx2) != nullptr)
        return KernelTarget::kAvx2;
    if (hostSupports(KernelTarget::kNeon) &&
        rawOps(KernelTarget::kNeon) != nullptr)
        return KernelTarget::kNeon;
    return KernelTarget::kScalar;
}

}  // namespace

const char *
kernelTargetName(KernelTarget target)
{
    switch (target) {
      case KernelTarget::kScalar: return "scalar";
      case KernelTarget::kAvx2: return "avx2";
      case KernelTarget::kNeon: return "neon";
    }
    return "?";
}

KernelTarget
parseKernelTarget(const std::string &name)
{
    if (name == "scalar")
        return KernelTarget::kScalar;
    if (name == "avx2")
        return KernelTarget::kAvx2;
    if (name == "neon")
        return KernelTarget::kNeon;
    throw std::runtime_error("unknown kernel target '" + name +
                             "' (valid: scalar, avx2, neon, auto)");
}

const KernelOps &
KernelDispatch::ops()
{
    DispatchState &s = state();
    const KernelOps *table = s.active.load(std::memory_order_acquire);
    if (table != nullptr)
        return *table;

    std::lock_guard<std::mutex> lock(s.mutex);
    table = s.active.load(std::memory_order_relaxed);
    if (table != nullptr)
        return *table;

    KernelTarget target;
    const char *provenance;
    if (s.forced) {
        target = s.forcedTarget;
        provenance = "forced";
    } else {
        const char *env = std::getenv("HOMUNCULUS_KERNELS");
        if (env != nullptr && *env != '\0' &&
            std::string(env) != "auto") {
            target = parseKernelTarget(env);  // throws on bogus values.
            if (completedLocked(s, target) == nullptr)
                throw std::runtime_error(
                    std::string("HOMUNCULUS_KERNELS=") + env +
                    ": target not available on this host");
            provenance = "env";
        } else {
            target = bestAvailable();
            provenance = "auto";
        }
    }
    table = completedLocked(s, target);
    if (table == nullptr)  // unreachable: availability checked above.
        throw std::runtime_error("KernelDispatch: no kernel table");
    s.provenance = provenance;
    s.active.store(table, std::memory_order_release);
    return *table;
}

KernelTarget
KernelDispatch::active()
{
    return ops().target;
}

const char *
KernelDispatch::provenance()
{
    ops();  // make sure a resolution happened.
    return state().provenance;
}

std::vector<KernelTarget>
KernelDispatch::available()
{
    DispatchState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<KernelTarget> out;
    for (KernelTarget target :
         {KernelTarget::kScalar, KernelTarget::kAvx2,
          KernelTarget::kNeon})
        if (completedLocked(s, target) != nullptr)
            out.push_back(target);
    return out;
}

const KernelOps *
KernelDispatch::find(KernelTarget target)
{
    DispatchState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return completedLocked(s, target);
}

void
KernelDispatch::force(KernelTarget target)
{
    DispatchState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    const KernelOps *table = completedLocked(s, target);
    if (table == nullptr)
        throw std::runtime_error(
            std::string("kernel target '") + kernelTargetName(target) +
            "' is not available on this host");
    s.forced = true;
    s.forcedTarget = target;
    s.provenance = "forced";
    s.active.store(table, std::memory_order_release);
}

void
KernelDispatch::reset()
{
    DispatchState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.forced = false;
    s.provenance = "auto";
    s.active.store(nullptr, std::memory_order_release);
}

}  // namespace homunculus::kernels
