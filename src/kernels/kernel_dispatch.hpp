/**
 * @file
 * KernelDispatch: runtime CPU-dispatch registry over the kernel TUs.
 *
 * The host is probed once, at first use: the best compiled-in table
 * whose ISA the CPU reports (AVX2 on x86-64, NEON on AArch64, scalar
 * everywhere) becomes the process-wide active table. The probe is
 * overridable without a rebuild:
 *
 *   HOMUNCULUS_KERNELS=scalar|avx2|neon|auto   (env, read at first use)
 *   homc --kernel scalar|avx2|neon|auto        (forces via force())
 *   EngineOptions::forceScalarKernels          (per-engine, via
 *                                               ExecutablePlan::forceKernelTarget)
 *
 * Requesting a target the host can't run (or a bogus env value) is an
 * error, not a silent fallback — benchmarks and differential tests must
 * never quietly measure the wrong path.
 *
 * Thread model: ops() may be called from any number of workers
 * concurrently; resolution is serialized internally and the returned
 * table is immutable. force()/reset() are test/CLI-setup entry points —
 * call them before spinning up inference threads.
 */
#pragma once

#include <string>
#include <vector>

#include "kernels/kernel_api.hpp"

namespace homunculus::kernels {

/** Display name of a target ("scalar", "avx2", "neon"). */
const char *kernelTargetName(KernelTarget target);

/** Parse a target name (case-sensitive, matching the env contract).
 *  @throws std::runtime_error naming the valid values. "auto" is not a
 *  target — resolve it via KernelDispatch::ops(). */
KernelTarget parseKernelTarget(const std::string &name);

class KernelDispatch
{
  public:
    /**
     * The active kernel table, resolving it on first call: an explicit
     * force() wins, else HOMUNCULUS_KERNELS (when set and not "auto"),
     * else the best target the host supports.
     * @throws std::runtime_error when the env names a bogus or
     *         unsupported target.
     */
    static const KernelOps &ops();

    /** Target of the table ops() returns (resolves if needed). */
    static KernelTarget active();

    /** How the active table was chosen: "auto", "env", or "forced". */
    static const char *provenance();

    /** Every target this host can run right now (scalar always;
     *  compiled-in ISA tables only when the CPU reports the ISA). */
    static std::vector<KernelTarget> available();

    /** The completed table for @p target, or nullptr when the target
     *  is not available on this host. Does not change the active
     *  table — differential tests run several targets side by side. */
    static const KernelOps *find(KernelTarget target);

    /** Pin the active table to @p target (wins over the env).
     *  @throws std::runtime_error when unavailable on this host. */
    static void force(KernelTarget target);

    /** Drop any resolution and force(): the next ops() re-reads the
     *  env and re-probes. Test hook. */
    static void reset();
};

}  // namespace homunculus::kernels
