#include "backends/mat_pipeline.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "kernels/kernel_dispatch.hpp"
#include "runtime/executor.hpp"

namespace homunculus::backends {

namespace {

/**
 * Bucketized entry lookup for range tables (the SVM feature bins):
 * binary-search the storage-ordered hi bounds for the first entry
 * ending at or above key, then confirm its lo. `rangeIndexed`
 * guarantees lo and hi are both non-decreasing in storage order, so
 * that entry is exactly the linear first match: every earlier entry
 * ends below key, and if this one starts above key, so does every
 * later one — touching bins (shared boundary points) resolve to the
 * earlier bin, as the linear scan does.
 */
const MatEntry *
findRangeEntry(const MatTable &table, std::int32_t key)
{
    auto it = std::lower_bound(table.orderedHi.begin(),
                               table.orderedHi.end(), key);
    if (it == table.orderedHi.end())
        return nullptr;  // key above every entry's hi.
    const MatEntry &entry =
        table.entries[static_cast<std::size_t>(
            it - table.orderedHi.begin())];
    return entry.lo <= key ? &entry : nullptr;
}

/** The [begin, end) span of sortedOrder whose entries match @p key
 *  exactly (lo == hi == key — the tree state groups), original entry
 *  order preserved by the stable sort. */
std::pair<std::size_t, std::size_t>
findExactGroup(const MatTable &table, std::int32_t key)
{
    auto range = std::equal_range(table.sortedLo.begin(),
                                  table.sortedLo.end(), key);
    return {static_cast<std::size_t>(range.first - table.sortedLo.begin()),
            static_cast<std::size_t>(range.second -
                                     table.sortedLo.begin())};
}

void
buildLookupIndex(MatTable &table)
{
    std::size_t n = table.entries.size();
    table.orderedHi.clear();
    table.sortedLo.clear();
    table.sortedOrder.clear();
    table.rangeIndexed = false;
    table.groupIndexed = false;

    // Only the index this stage kind's walk consults is built (and
    // kept); distance/select stages do no entry lookups at all.
    if (table.kind == MatStageKind::kAccumulate) {
        // Range index: usable when lo and hi are both non-decreasing
        // in storage order (the compile* factories install bins in
        // ascending order, so this holds for every generated table).
        table.rangeIndexed = true;
        table.orderedHi.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            table.orderedHi[i] = table.entries[i].hi;
            if (i > 0 &&
                (table.entries[i].lo < table.entries[i - 1].lo ||
                 table.entries[i].hi < table.entries[i - 1].hi))
                table.rangeIndexed = false;
        }
        if (!table.rangeIndexed)
            table.orderedHi.clear();  // linear fallback; drop the index.
    } else if (table.kind == MatStageKind::kTreeLevel) {
        // Exact-match group index: usable when every entry is a point
        // match (the tree state entries); the stable sort keeps each
        // state group's entries in original order, so the group scan
        // reproduces the linear first-match exactly.
        table.groupIndexed = true;
        for (const MatEntry &entry : table.entries)
            if (entry.lo != entry.hi) {
                table.groupIndexed = false;
                break;
            }
        if (table.groupIndexed) {
            table.sortedOrder.resize(n);
            std::iota(table.sortedOrder.begin(), table.sortedOrder.end(),
                      0u);
            std::stable_sort(
                table.sortedOrder.begin(), table.sortedOrder.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                    return table.entries[a].lo < table.entries[b].lo;
                });
            table.sortedLo.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                table.sortedLo[i] =
                    table.entries[table.sortedOrder[i]].lo;
        }
    }
}

}  // namespace

void
MatPipeline::buildLookupIndexes()
{
    for (MatTable &table : tables_)
        buildLookupIndex(table);
}

std::size_t
MatPipeline::totalEntries() const
{
    std::size_t total = 0;
    for (const auto &table : tables_)
        // Distance tables hold their centroid as installed entries too.
        total += std::max<std::size_t>(table.entries.size(),
                                       table.centroid.empty() ? 0 : 1);
    return total;
}

void
MatPipeline::forceKernelTarget(kernels::KernelTarget target)
{
    const kernels::KernelOps *ops = kernels::KernelDispatch::find(target);
    if (ops == nullptr)
        throw std::runtime_error(
            std::string("MatPipeline: kernel target '") +
            kernels::kernelTargetName(target) +
            "' is not available on this host");
    forcedOps_ = ops;
}

MatPipeline
MatPipeline::compileKMeans(const ir::ModelIr &model)
{
    if (model.kind != ir::ModelKind::kKMeans)
        throw std::runtime_error("compileKMeans: wrong model kind");
    MatPipeline pipeline(model.format);
    pipeline.numClasses_ = model.centroids.size();
    pipeline.inputDim_ = model.inputDim;

    for (std::size_t c = 0; c < model.centroids.size(); ++c) {
        MatTable table;
        table.name = "kmeans_cluster_" + std::to_string(c);
        table.kind = MatStageKind::kDistance;
        table.centroid = model.centroids[c];
        table.classSlot = c;
        if (c + 1 == model.centroids.size()) {
            // The final cluster table fuses the arg-min selection so the
            // pipeline consumes exactly k MATs (paper §5.2.2 accounting).
            table.fusedSelect = true;
            table.selectMin = true;
        }
        pipeline.tables_.push_back(std::move(table));
    }
    pipeline.buildLookupIndexes();
    return pipeline;
}

MatPipeline
MatPipeline::compileSvm(const ir::ModelIr &model,
                        std::size_t bins_per_feature)
{
    if (model.kind != ir::ModelKind::kSvm)
        throw std::runtime_error("compileSvm: wrong model kind");
    if (bins_per_feature < 2)
        throw std::runtime_error("compileSvm: need >= 2 bins");
    MatPipeline pipeline(model.format);
    pipeline.numClasses_ = model.svmWeights.size();
    pipeline.inputDim_ = model.inputDim;
    const common::FixedPointFormat &fmt = model.format;

    // Feature domain: the scaled inputs live well inside [-8, 8] after
    // standardization; the outermost bins catch saturated values.
    const double lo = -8.0, hi = 8.0;
    double width = (hi - lo) / static_cast<double>(bins_per_feature);

    for (std::size_t f = 0; f < model.inputDim; ++f) {
        MatTable table;
        table.name = "svm_feature_" + std::to_string(f);
        table.kind = MatStageKind::kAccumulate;
        table.keyField = f;
        for (std::size_t b = 0; b < bins_per_feature; ++b) {
            MatEntry entry;
            double bin_lo = lo + width * static_cast<double>(b);
            double bin_hi = bin_lo + width;
            double center = 0.5 * (bin_lo + bin_hi);
            entry.lo = (b == 0) ? std::numeric_limits<std::int32_t>::min()
                                : fmt.quantize(bin_lo);
            entry.hi = (b + 1 == bins_per_feature)
                           ? std::numeric_limits<std::int32_t>::max()
                           : fmt.quantize(bin_hi);
            for (std::size_t c = 0; c < pipeline.numClasses_; ++c) {
                std::int64_t contribution =
                    fmt.multiply(fmt.quantize(center),
                                 model.svmWeights[c][f]);
                if (f == 0)
                    contribution += model.svmBiases[c];
                entry.classContribution.push_back(contribution);
            }
            table.entries.push_back(std::move(entry));
        }
        if (f + 1 == model.inputDim) {
            table.fusedSelect = true;
            table.selectMin = false;
        }
        pipeline.tables_.push_back(std::move(table));
    }
    pipeline.buildLookupIndexes();
    return pipeline;
}

MatPipeline
MatPipeline::compileTree(const ir::ModelIr &model)
{
    if (model.kind != ir::ModelKind::kDecisionTree)
        throw std::runtime_error("compileTree: wrong model kind");
    MatPipeline pipeline(model.format);
    pipeline.numClasses_ = static_cast<std::size_t>(model.numClasses);
    pipeline.inputDim_ = model.inputDim;

    // Level-order traversal: nodes reachable at each depth become entries
    // of that level's table, keyed on the packet's current state (node id).
    std::vector<std::vector<int>> levels;
    std::vector<int> frontier = {0};
    while (!frontier.empty()) {
        levels.push_back(frontier);
        std::vector<int> next;
        for (int idx : frontier) {
            const ir::IrTreeNode &node =
                model.treeNodes[static_cast<std::size_t>(idx)];
            if (!node.isLeaf) {
                next.push_back(node.left);
                next.push_back(node.right);
            }
        }
        frontier = std::move(next);
    }
    // Every level gets a table: internal nodes contribute comparison
    // entries that advance the state, leaves contribute entries that
    // write the final label.
    for (std::size_t depth = 0; depth < levels.size(); ++depth) {
        MatTable table;
        table.name = "tree_level_" + std::to_string(depth);
        table.kind = MatStageKind::kTreeLevel;
        for (int idx : levels[depth]) {
            const ir::IrTreeNode &node =
                model.treeNodes[static_cast<std::size_t>(idx)];
            if (node.isLeaf) {
                // A leaf at this level: match on state, write the label.
                MatEntry entry;
                entry.lo = idx;   // state match encoded in [lo, lo].
                entry.hi = idx;
                entry.labelWrite = node.classLabel;
                table.entries.push_back(entry);
                continue;
            }
            // Internal node: two entries (<= threshold, > threshold).
            MatEntry left;
            left.lo = idx;
            left.hi = idx;
            left.nextState = node.left;
            left.labelWrite = -1;
            // Encode the comparison via the keyField + threshold carried
            // in classContribution[0] (the interpreter understands this).
            left.classContribution = {node.threshold, 1};  // 1 = "<=".
            MatEntry right = left;
            right.nextState = node.right;
            right.classContribution = {node.threshold, 0};  // 0 = ">".
            table.keyField = node.feature;  // per-entry feature below.
            left.classContribution.push_back(
                static_cast<std::int64_t>(node.feature));
            right.classContribution.push_back(
                static_cast<std::int64_t>(node.feature));
            table.entries.push_back(left);
            table.entries.push_back(right);
        }
        pipeline.tables_.push_back(std::move(table));
    }
    pipeline.buildLookupIndexes();
    return pipeline;
}

int
MatPipeline::process(const std::vector<double> &features) const
{
    if (features.size() != inputDim_)
        throw std::runtime_error("MatPipeline: feature width mismatch");
    std::vector<std::int32_t> quantized = format_.quantizeVector(features);
    std::vector<std::int64_t> accumulators(numClasses_, 0);
    return walk(quantized.data(), accumulators.data(), /*use_index=*/true);
}

int
MatPipeline::processLinear(const std::vector<double> &features) const
{
    if (features.size() != inputDim_)
        throw std::runtime_error("MatPipeline: feature width mismatch");
    std::vector<std::int32_t> quantized = format_.quantizeVector(features);
    std::vector<std::int64_t> accumulators(numClasses_, 0);
    return walk(quantized.data(), accumulators.data(),
                /*use_index=*/false);
}

std::vector<int>
MatPipeline::processBatch(const math::Matrix &x, std::size_t jobs,
                          const ir::QuantizedMatrix *pre_quantized,
                          runtime::Executor *executor) const
{
    if (x.rows() > 0 && x.cols() != inputDim_)
        throw std::runtime_error("MatPipeline: feature width mismatch");
    std::vector<int> labels(x.rows());
    if (x.rows() == 0)
        return labels;

    // A pre-quantized view is usable only when it matches this
    // pipeline's format and shape; otherwise quantize per row as before.
    if (pre_quantized != nullptr &&
        (pre_quantized->rows() != x.rows() ||
         pre_quantized->cols() != x.cols() ||
         pre_quantized->format().integerBits() != format_.integerBits() ||
         pre_quantized->format().fracBits() != format_.fracBits()))
        pre_quantized = nullptr;

    // Per-worker scratch hoisted out of the per-packet loop; rows are
    // read in place. Shards of kWalkChunkRows fan out over the pool
    // (512 matches the engine's re-measured minRowsToShard: with the
    // persistent Executor a dispatch is a queue handoff), and inside a
    // shard the walk runs stage-major over kMatChunkRows-row chunks —
    // each table stage resolves a whole chunk before the next stage,
    // so range-match stages batch their binary searches through the
    // kernel dispatch layer with the table's bounds hot in cache. The
    // walk is per-row independent, so both levels of chunking stitch
    // deterministically into labels at any jobs width.
    constexpr std::size_t kWalkChunkRows = 512;
    constexpr std::size_t kMatChunkRows = 64;
    runtime::Executor &pool = executor != nullptr
                                  ? *executor
                                  : runtime::Executor::processDefault();
    std::size_t workers = pool.resolve(jobs);
    struct WalkScratch
    {
        std::vector<std::int32_t> quantized;
        std::vector<const std::int32_t *> rows;
        std::vector<std::int64_t> accumulators;
        std::vector<std::int32_t> states;
        std::vector<std::uint8_t> written;
        std::vector<std::uint32_t> lookup;
        std::vector<std::int32_t> keys;
    };
    std::vector<WalkScratch> scratches(workers);
    pool.runChunks(
        workers, x.rows(), kWalkChunkRows,
        [&](std::size_t begin, std::size_t end, std::size_t worker) {
            WalkScratch &scratch = scratches[worker];
            scratch.quantized.resize(kMatChunkRows * inputDim_);
            scratch.rows.resize(kMatChunkRows);
            scratch.accumulators.resize(kMatChunkRows * numClasses_);
            scratch.states.resize(kMatChunkRows);
            scratch.written.resize(kMatChunkRows);
            scratch.lookup.resize(kMatChunkRows);
            scratch.keys.resize(kMatChunkRows);
            for (std::size_t chunk = begin; chunk < end;
                 chunk += kMatChunkRows) {
                std::size_t count =
                    std::min(kMatChunkRows, end - chunk);
                for (std::size_t i = 0; i < count; ++i) {
                    if (pre_quantized != nullptr) {
                        scratch.rows[i] =
                            pre_quantized->rowPtr(chunk + i);
                    } else {
                        std::int32_t *q =
                            scratch.quantized.data() + i * inputDim_;
                        format_.quantizeInto(x.rowPtr(chunk + i), q,
                                             inputDim_);
                        scratch.rows[i] = q;
                    }
                }
                walkChunk(scratch.rows.data(), count,
                          scratch.accumulators.data(),
                          scratch.states.data(), labels.data() + chunk,
                          scratch.written.data(), scratch.lookup.data(),
                          scratch.keys.data());
            }
        });
    return labels;
}

void
MatPipeline::walkChunk(const std::int32_t *const *rows, std::size_t count,
                       std::int64_t *accumulators, std::int32_t *states,
                       int *labels, std::uint8_t *written,
                       std::uint32_t *lookup, std::int32_t *keys) const
{
    const kernels::KernelOps &ops =
        forcedOps_ != nullptr ? *forcedOps_
                              : kernels::KernelDispatch::ops();
    std::fill(accumulators, accumulators + count * numClasses_,
              std::int64_t{0});
    std::fill(states, states + count, 0);
    std::fill(labels, labels + count, 0);
    std::fill(written, written + count, std::uint8_t{0});

    // One row's tree-level entry application — the same semantics as
    // walk()'s applyTreeEntry, against this row's chunk slots.
    auto applyTreeEntry = [&](const MatEntry &entry, std::size_t i) {
        if (entry.labelWrite >= 0 && entry.classContribution.empty()) {
            labels[i] = entry.labelWrite;
            written[i] = 1;
            return true;
        }
        std::int64_t threshold = entry.classContribution[0];
        bool is_le = entry.classContribution[1] == 1;
        auto feature =
            static_cast<std::size_t>(entry.classContribution[2]);
        bool cmp = rows[i][feature] <= threshold;
        if (cmp == is_le) {
            states[i] = entry.nextState;
            return true;
        }
        return false;
    };

    for (const MatTable &table : tables_) {
        switch (table.kind) {
          case MatStageKind::kDistance: {
            // Whole-chunk distance stage: the centroid streams once
            // per row with the fused reduction kernel (narrow formats;
            // wide ones keep the int64 scalar loop for exactness).
            if (narrow_) {
                for (std::size_t i = 0; i < count; ++i)
                    accumulators[i * numClasses_ + table.classSlot] =
                        ops.squaredDist(rows[i], table.centroid.data(),
                                        inputDim_);
            } else {
                for (std::size_t i = 0; i < count; ++i) {
                    std::int64_t dist = 0;
                    for (std::size_t f = 0; f < inputDim_; ++f) {
                        std::int64_t d =
                            static_cast<std::int64_t>(rows[i][f]) -
                            table.centroid[f];
                        dist += d * d;
                    }
                    accumulators[i * numClasses_ + table.classSlot] =
                        dist;
                }
            }
            break;
          }
          case MatStageKind::kAccumulate: {
            if (table.rangeIndexed) {
                // Batched range-match: resolve every row's bucket in
                // one kernel call (the binary searches share the
                // table's hi bounds in cache), then confirm lo and
                // apply the ALU action per row.
                const std::size_t n = table.orderedHi.size();
                for (std::size_t i = 0; i < count; ++i)
                    keys[i] = rows[i][table.keyField];
                ops.rangeLowerBound(keys, count, table.orderedHi.data(),
                                    n, lookup);
                for (std::size_t i = 0; i < count; ++i) {
                    if (lookup[i] >= n)
                        continue;  // key above every entry's hi.
                    const MatEntry &entry = table.entries[lookup[i]];
                    if (entry.lo > keys[i])
                        continue;  // gap between bins.
                    std::int64_t *acc = accumulators + i * numClasses_;
                    for (std::size_t c = 0; c < numClasses_; ++c)
                        acc[c] += entry.classContribution[c];
                }
            } else {
                for (std::size_t i = 0; i < count; ++i) {
                    std::int32_t key = rows[i][table.keyField];
                    for (const MatEntry &entry : table.entries) {
                        if (key >= entry.lo && key <= entry.hi) {
                            std::int64_t *acc =
                                accumulators + i * numClasses_;
                            for (std::size_t c = 0; c < numClasses_;
                                 ++c)
                                acc[c] += entry.classContribution[c];
                            break;  // first-match semantics.
                        }
                    }
                }
            }
            break;
          }
          case MatStageKind::kTreeLevel: {
            for (std::size_t i = 0; i < count; ++i) {
                if (written[i])
                    continue;  // classified at a shallower leaf.
                if (table.groupIndexed) {
                    auto [begin, end] = findExactGroup(table, states[i]);
                    for (std::size_t e = begin; e < end; ++e)
                        if (applyTreeEntry(
                                table.entries[table.sortedOrder[e]], i))
                            break;
                } else {
                    for (const MatEntry &entry : table.entries) {
                        if (states[i] < entry.lo || states[i] > entry.hi)
                            continue;
                        if (applyTreeEntry(entry, i))
                            break;
                    }
                }
            }
            break;
          }
          case MatStageKind::kSelectMin:
          case MatStageKind::kSelectMax:
            break;  // standalone select stages are always fused.
        }

        if (table.fusedSelect) {
            for (std::size_t i = 0; i < count; ++i) {
                if (written[i])
                    continue;
                const std::int64_t *acc = accumulators + i * numClasses_;
                std::size_t best = 0;
                for (std::size_t c = 1; c < numClasses_; ++c) {
                    bool better = table.selectMin ? acc[c] < acc[best]
                                                  : acc[c] > acc[best];
                    if (better)
                        best = c;
                }
                labels[i] = static_cast<int>(best);
                written[i] = 1;
            }
        }
    }
}

int
MatPipeline::walk(const std::int32_t *q, std::int64_t *accumulators,
                  bool use_index) const
{
    std::int32_t state = 0;   // tree traversal node id.
    int label = 0;
    bool label_written = false;

    // One tree-level entry against the packet: a leaf entry writes the
    // label, a comparison entry advances the state when its polarity
    // matches. Returns true when the entry consumed the packet (the
    // level's first-match break).
    auto applyTreeEntry = [&](const MatEntry &entry) {
        if (entry.labelWrite >= 0 && entry.classContribution.empty()) {
            label = entry.labelWrite;
            label_written = true;
            return true;
        }
        // Comparison entry: payload = [threshold, is_le, feature].
        std::int64_t threshold = entry.classContribution[0];
        bool is_le = entry.classContribution[1] == 1;
        auto feature =
            static_cast<std::size_t>(entry.classContribution[2]);
        bool cmp = q[feature] <= threshold;
        if (cmp == is_le) {
            state = entry.nextState;
            // A next state pointing at a leaf resolves on the next
            // level's leaf entry.
            return true;
        }
        return false;
    };

    for (const MatTable &table : tables_) {
        switch (table.kind) {
          case MatStageKind::kDistance: {
            std::int64_t dist = 0;
            for (std::size_t f = 0; f < inputDim_; ++f) {
                std::int64_t d = static_cast<std::int64_t>(q[f]) -
                                 table.centroid[f];
                dist += d * d;
            }
            accumulators[table.classSlot] = dist;
            break;
          }
          case MatStageKind::kAccumulate: {
            std::int32_t key = q[table.keyField];
            const MatEntry *match = nullptr;
            if (use_index && table.rangeIndexed) {
                match = findRangeEntry(table, key);
            } else {
                for (const MatEntry &entry : table.entries) {
                    if (key >= entry.lo && key <= entry.hi) {
                        match = &entry;  // first-match semantics.
                        break;
                    }
                }
            }
            if (match != nullptr)
                for (std::size_t c = 0; c < numClasses_; ++c)
                    accumulators[c] += match->classContribution[c];
            break;
          }
          case MatStageKind::kTreeLevel: {
            if (label_written)
                break;  // packet already classified at a shallower leaf.
            if (use_index && table.groupIndexed) {
                // State matches are exact ([lo, lo] entries), so the
                // index narrows the scan to this state's entry group.
                auto [begin, end] = findExactGroup(table, state);
                for (std::size_t i = begin; i < end; ++i)
                    if (applyTreeEntry(
                            table.entries[table.sortedOrder[i]]))
                        break;
            } else {
                for (const MatEntry &entry : table.entries) {
                    if (state < entry.lo || state > entry.hi)
                        continue;
                    if (applyTreeEntry(entry))
                        break;
                }
            }
            break;
          }
          case MatStageKind::kSelectMin:
          case MatStageKind::kSelectMax:
            break;  // standalone select stages are always fused; see below.
        }

        if (table.fusedSelect && !label_written) {
            std::size_t best = 0;
            for (std::size_t c = 1; c < numClasses_; ++c) {
                bool better = table.selectMin
                                  ? accumulators[c] < accumulators[best]
                                  : accumulators[c] > accumulators[best];
                if (better)
                    best = c;
            }
            label = static_cast<int>(best);
            label_written = true;
        }
    }

    // Tree pipelines whose walk ended on a leaf node id resolve here.
    if (!label_written && !tables_.empty() &&
        tables_.front().kind == MatStageKind::kTreeLevel) {
        // Fall back to the state's label if it is a leaf id (robustness
        // against depth-truncated tables).
        label = 0;
    }
    return label;
}

}  // namespace homunculus::backends
