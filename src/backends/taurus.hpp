/**
 * @file
 * Taurus backend: a Plasticine-style CGRA "MapReduce" block in a switch.
 *
 * Substitution (see DESIGN.md): the paper maps models onto the Taurus
 * testbed (Tofino + FPGA bump-in-the-wire) and measures resources with
 * the SARA/Tungsten toolchain. We model the same observable surface:
 *
 *  - The MapReduce block is a grid of compute units (CUs) and memory
 *    units (MUs). A CU provides `cuLanes` parallel MACs deepened by
 *    `cuStages` pipeline stages; an MU stores `muWordCapacity` weight
 *    words and provides the double-buffered SRAM between layers.
 *  - A dense layer (in x out) fully unrolled for line rate needs
 *    ceil(in/cuStages) * ceil(out/cuLanes) CUs and
 *    ceil(params/muWordCapacity) + bufferMusPerLayer MUs.
 *  - If the CU demand exceeds the grid, the mapper time-multiplexes,
 *    raising the initiation interval (II) and dividing throughput —
 *    exactly the "too many iterations in the vector-matrix loop brings
 *    down device throughput" pruning the paper describes (§3).
 */
#pragma once

#include "backends/platform.hpp"

namespace homunculus::backends {

/** Physical description of a Taurus MapReduce grid. */
struct TaurusConfig
{
    std::size_t gridRows = 16;
    std::size_t gridCols = 16;
    double clockGhz = 1.0;          ///< 1 GHz -> 1 GPkt/s at II=1.
    std::size_t cuLanes = 4;        ///< parallel MACs per CU.
    std::size_t cuStages = 2;       ///< pipeline depth per CU.
    std::size_t muWordCapacity = 8;   ///< weight words per MU.
    std::size_t bufferMusPerLayer = 3;  ///< double-buffered SRAM per layer.
    double parseDeparseCycles = 12.0;   ///< fixed PISA pre/post processing.

    /** CU plane size (one plane of the checkerboard grid). */
    std::size_t cuBudget() const { return gridRows * gridCols; }
    /** MU plane size. */
    std::size_t muBudget() const { return gridRows * gridCols; }
};

/** Cost of mapping one model onto the grid. */
struct TaurusMappingCost
{
    std::size_t cus = 0;
    std::size_t mus = 0;
    double fillCycles = 0.0;   ///< pipeline fill latency in cycles.
    double ii = 1.0;           ///< initiation interval in cycles.
};

/** Compute the mapping cost of a model (shared by platform + simulator). */
TaurusMappingCost taurusMappingCost(const TaurusConfig &config,
                                    const ir::ModelIr &model);

/** The Taurus platform backend. */
class TaurusPlatform : public Platform
{
  public:
    explicit TaurusPlatform(TaurusConfig config = {});

    std::string name() const override { return "taurus"; }
    AlgorithmSupport supports(ir::ModelKind kind) const override;
    ResourceReport estimate(const ir::ModelIr &model) const override;
    std::vector<int> evaluate(const ir::ModelIr &model,
                              const math::Matrix &x,
                              const EvalOptions &options = {}) const override;
    std::string generateCode(const ir::ModelIr &model) const override;
    PlatformPtr withBudget(const ResourceBudget &budget) const override;

    const TaurusConfig &config() const { return config_; }

  private:
    TaurusConfig config_;
};

/** Self-registration hook ("taurus"); idempotent. */
bool registerTaurusBackend();

}  // namespace homunculus::backends
