/**
 * @file
 * Spatial code generator: template-assembled programs for Taurus / FPGA.
 *
 * Reproduces the paper's Figure 5 methodology: a library of small
 * parameterized templates (dot product as map+reduce, activation,
 * double-buffered layer glue, arg-select) composed bottom-up into a full
 * packet pipeline. The emitted program is Spatial-DSL-shaped Scala text
 * with the quantized weights inlined as LUT initializers.
 */
#pragma once

#include <string>

#include "ir/model_ir.hpp"

namespace homunculus::backends {

/** Emits Spatial programs from ModelIr. */
class SpatialCodegen
{
  public:
    /** Generate the complete program for any supported model kind. */
    std::string generate(const ir::ModelIr &model) const;

    // Template building blocks, public so tests can pin their structure.

    /** Dense layer: map over neurons, reduce over inputs, activation. */
    std::string denseLayerTemplate(const ir::QuantizedLayer &layer,
                                   std::size_t index, bool is_output,
                                   ml::Activation activation) const;

    /** Squared-distance + arg-min block for KMeans. */
    std::string kmeansTemplate(const ir::ModelIr &model) const;

    /** Per-class dot product + arg-max block for SVM. */
    std::string svmTemplate(const ir::ModelIr &model) const;

    /** Comparator cascade for decision trees. */
    std::string treeTemplate(const ir::ModelIr &model) const;

  private:
    std::string prologue(const ir::ModelIr &model) const;
    std::string epilogue(const ir::ModelIr &model) const;
};

}  // namespace homunculus::backends
