#include "backends/registry.hpp"

#include <algorithm>
#include <atomic>

#include "backends/fpga.hpp"
#include "backends/mat_platform.hpp"
#include "backends/taurus.hpp"

namespace homunculus::backends {

double
BackendParams::numberOr(const std::string &key, double fallback) const
{
    auto it = numeric.find(key);
    return it == numeric.end() ? fallback : it->second;
}

std::size_t
BackendParams::sizeOr(const std::string &key, std::size_t fallback) const
{
    auto it = numeric.find(key);
    if (it == numeric.end() || it->second < 0.0)
        return fallback;
    return static_cast<std::size_t>(it->second);
}

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry;
    return registry;
}

bool
BackendRegistry::registerFactory(const std::string &name,
                                 BackendFactory factory)
{
    if (name.empty() || !factory)
        return false;
    // Builtins claim their names first, so an early plugin registration
    // can never shadow "taurus" & co. (the guard below keeps the hooks'
    // own registerFactory calls from recursing back here).
    registerBuiltinBackends();
    std::lock_guard<std::mutex> lock(mutex_);
    return factories_.emplace(name, std::move(factory)).second;
}

bool
BackendRegistry::unregisterFactory(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return factories_.erase(name) > 0;
}

bool
BackendRegistry::contains(const std::string &name) const
{
    registerBuiltinBackends();
    std::lock_guard<std::mutex> lock(mutex_);
    return factories_.count(name) > 0;
}

std::vector<std::string>
BackendRegistry::names() const
{
    registerBuiltinBackends();
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_)
        out.push_back(name);
    return out;  // std::map iteration is already sorted.
}

PlatformPtr
BackendRegistry::create(const std::string &name,
                        const BackendParams &params) const
{
    registerBuiltinBackends();
    BackendFactory factory;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = factories_.find(name);
        if (it == factories_.end())
            return nullptr;
        factory = it->second;
    }
    return factory(params);
}

std::string
BackendRegistry::unknownTargetMessage(const std::string &name) const
{
    std::string known;
    for (const auto &target : names()) {
        if (!known.empty())
            known += ", ";
        known += target;
    }
    return "unknown platform '" + name + "'; known platforms: " + known;
}

void
registerBuiltinBackends()
{
    // Fast path once registration finished. Concurrent first calls may
    // both run the hooks; duplicate registrations are rejected anyway.
    static std::atomic<bool> done{false};
    if (done.load(std::memory_order_acquire))
        return;
    thread_local bool registering = false;
    if (registering)
        return;
    registering = true;
    // Referencing the per-backend hooks here also forces their object
    // files into any link that uses the registry, so the factories exist
    // even when nothing else names the concrete classes.
    registerTaurusBackend();
    registerMatBackend();
    registerFpgaBackend();
    registering = false;
    done.store(true, std::memory_order_release);
}

}  // namespace homunculus::backends
