/**
 * @file
 * BackendRegistry: the string-keyed factory table every target resolves
 * through.
 *
 * `Platforms::taurus()`, `homc --platform`, and the benches all create
 * backends by name here, so adding a platform means registering one
 * factory — no edits to core/. The built-in backends self-register (each
 * concrete backend .cpp exposes a registerXxxBackend() hook the registry
 * pulls in lazily); out-of-tree backends call registerFactory() from
 * their own initialization.
 *
 * Factories receive a BackendParams: either a typed config object
 * (TaurusConfig, MatConfig, FpgaConfig — passed via std::any by the
 * typed Platforms::* constructors) or generic numeric knobs such as
 * "grid_rows" / "tables" that CLI-style callers can set without knowing
 * the concrete config type.
 */
#pragma once

#include <any>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "backends/platform.hpp"

namespace homunculus::backends {

/** Construction inputs a factory may honor. */
struct BackendParams
{
    /** Generic knobs ("grid_rows", "grid_cols", "tables", "entries"…). */
    std::map<std::string, double> numeric;
    /** Optional concrete config (TaurusConfig etc.); wins over numeric. */
    std::any typedConfig;

    double numberOr(const std::string &key, double fallback) const;
    std::size_t sizeOr(const std::string &key, std::size_t fallback) const;
};

using BackendFactory = std::function<PlatformPtr(const BackendParams &)>;

/** Process-wide, thread-safe name -> factory table. */
class BackendRegistry
{
  public:
    static BackendRegistry &instance();

    /** Add a factory. @return false (and no change) on a duplicate name. */
    bool registerFactory(const std::string &name, BackendFactory factory);

    /** Remove a factory. @return false when the name is unknown. */
    bool unregisterFactory(const std::string &name);

    bool contains(const std::string &name) const;

    /** Registered target names, sorted. */
    std::vector<std::string> names() const;

    /** Build a platform; nullptr when @p name is not registered. */
    PlatformPtr create(const std::string &name,
                       const BackendParams &params = {}) const;

    /** "unknown platform 'x'; known platforms: fpga, taurus, …" */
    std::string unknownTargetMessage(const std::string &name) const;

  private:
    BackendRegistry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, BackendFactory> factories_;
};

/**
 * Register the built-in backends (idempotent; duplicates are no-ops).
 * create()/names()/contains() call this lazily, so consumers never see a
 * registry without the in-tree targets.
 */
void registerBuiltinBackends();

}  // namespace homunculus::backends
