#include "backends/taurus.hpp"

#include <cmath>

#include "backends/mapreduce_sim.hpp"
#include "backends/registry.hpp"
#include "backends/spatial_codegen.hpp"
#include "common/string_util.hpp"

namespace homunculus::backends {

namespace {

std::size_t
ceilDiv(std::size_t a, std::size_t b)
{
    return (a + b - 1) / b;
}

double
log2Ceil(std::size_t n)
{
    return n <= 1 ? 1.0 : std::ceil(std::log2(static_cast<double>(n)));
}

/** CU/MU/latency contribution of one dense (in x out) layer. */
TaurusMappingCost
denseLayerCost(const TaurusConfig &config, std::size_t in, std::size_t out)
{
    TaurusMappingCost cost;
    cost.cus = ceilDiv(in, config.cuStages) * ceilDiv(out, config.cuLanes);
    std::size_t params = in * out + out;
    cost.mus = ceilDiv(params, config.muWordCapacity) +
               config.bufferMusPerLayer;
    // Fill: lane-serial MAC streaming plus the adder-reduction tree and
    // one activation stage.
    cost.fillCycles = static_cast<double>(ceilDiv(in, config.cuLanes)) +
                      log2Ceil(in) + 1.0;
    return cost;
}

}  // namespace

TaurusMappingCost
taurusMappingCost(const TaurusConfig &config, const ir::ModelIr &model)
{
    TaurusMappingCost total;
    total.fillCycles = config.parseDeparseCycles;

    switch (model.kind) {
      case ir::ModelKind::kMlp: {
        for (const auto &layer : model.layers) {
            TaurusMappingCost c =
                denseLayerCost(config, layer.inputDim, layer.outputDim);
            total.cus += c.cus;
            total.mus += c.mus;
            total.fillCycles += c.fillCycles;
        }
        break;
      }
      case ir::ModelKind::kKMeans: {
        // Distance computation: map over k centroids, reduce over d dims.
        std::size_t k = model.centroids.size();
        TaurusMappingCost c = denseLayerCost(config, model.inputDim, k);
        total.cus += c.cus;
        total.mus += c.mus;
        total.fillCycles += c.fillCycles + log2Ceil(k);  // argmin tree.
        break;
      }
      case ir::ModelKind::kSvm: {
        std::size_t classes = model.svmWeights.size();
        TaurusMappingCost c = denseLayerCost(config, model.inputDim, classes);
        total.cus += c.cus;
        total.mus += c.mus;
        total.fillCycles += c.fillCycles + log2Ceil(classes);
        break;
      }
      case ir::ModelKind::kDecisionTree: {
        // One comparator stage per level; nodes live in MU words.
        total.cus += std::max<std::size_t>(1, model.treeDepth);
        total.mus += ceilDiv(model.treeNodes.size() * 2,
                             config.muWordCapacity) + 1;
        total.fillCycles += static_cast<double>(model.treeDepth) + 1.0;
        break;
      }
    }

    // Time-multiplex when the CU demand exceeds the grid plane.
    if (total.cus > config.cuBudget()) {
        total.ii = std::ceil(static_cast<double>(total.cus) /
                             static_cast<double>(config.cuBudget()));
        // Multiplexing adds scheduling slack to the fill latency as well.
        total.fillCycles += (total.ii - 1.0) *
                            static_cast<double>(
                                std::max<std::size_t>(1,
                                                      model.layers.size()));
    }
    return total;
}

TaurusPlatform::TaurusPlatform(TaurusConfig config) : config_(config)
{
}

AlgorithmSupport
TaurusPlatform::supports(ir::ModelKind kind) const
{
    // The MapReduce grid executes all linear-algebra families plus
    // comparator trees.
    (void)kind;
    return AlgorithmSupport::kSupported;
}

ResourceReport
TaurusPlatform::estimate(const ir::ModelIr &model) const
{
    TaurusMappingCost cost = taurusMappingCost(config_, model);

    ResourceReport report;
    report.computeUnits = cost.cus;
    report.memoryUnits = cost.mus;
    report.latencyNs = cost.fillCycles / config_.clockGhz;
    report.throughputGpps = config_.clockGhz / cost.ii;

    report.feasible = true;
    if (cost.mus > config_.muBudget()) {
        report.feasible = false;
        report.infeasibleReason = common::format(
            "MUs %zu exceed budget %zu", cost.mus, config_.muBudget());
    } else if (cost.cus > config_.cuBudget()) {
        // CU overflow is representable via multiplexing but always breaks
        // the line-rate constraint below; report the root cause.
        report.feasible = false;
        report.infeasibleReason = common::format(
            "CUs %zu exceed budget %zu", cost.cus, config_.cuBudget());
    } else if (report.throughputGpps < constraints_.minThroughputGpps) {
        report.feasible = false;
        report.infeasibleReason = common::format(
            "throughput %.2f below %.2f GPkt/s", report.throughputGpps,
            constraints_.minThroughputGpps);
    } else if (report.latencyNs > constraints_.maxLatencyNs) {
        report.feasible = false;
        report.infeasibleReason = common::format(
            "latency %.1f above %.1f ns", report.latencyNs,
            constraints_.maxLatencyNs);
    }
    return report;
}

std::vector<int>
TaurusPlatform::evaluate(const ir::ModelIr &model, const math::Matrix &x,
                         const EvalOptions &options) const
{
    MapReduceSimulator sim(config_);
    return sim.runStream(model, x, options).labels;
}

std::string
TaurusPlatform::generateCode(const ir::ModelIr &model) const
{
    SpatialCodegen codegen;
    return codegen.generate(model);
}

PlatformPtr
TaurusPlatform::withBudget(const ResourceBudget &budget) const
{
    if (!budget.gridRows && !budget.gridCols)
        return nullptr;
    TaurusConfig config = config_;
    if (budget.gridRows)
        config.gridRows = *budget.gridRows;
    if (budget.gridCols)
        config.gridCols = *budget.gridCols;
    auto rebuilt = std::make_shared<TaurusPlatform>(config);
    rebuilt->setConstraints(constraints_);
    return rebuilt;
}

bool
registerTaurusBackend()
{
    return BackendRegistry::instance().registerFactory(
        "taurus", [](const BackendParams &params) -> PlatformPtr {
            if (const auto *config =
                    std::any_cast<TaurusConfig>(&params.typedConfig))
                return std::make_shared<TaurusPlatform>(*config);
            TaurusConfig config;
            config.gridRows = params.sizeOr("grid_rows", config.gridRows);
            config.gridCols = params.sizeOr("grid_cols", config.gridCols);
            config.clockGhz = params.numberOr("clock_ghz", config.clockGhz);
            return std::make_shared<TaurusPlatform>(config);
        });
}

}  // namespace homunculus::backends
