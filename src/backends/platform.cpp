#include "backends/platform.hpp"

#include "common/string_util.hpp"
#include "ir/exec_plan.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/quant_cache.hpp"

namespace homunculus::backends {

std::vector<int>
runPlanBacked(const ir::ModelIr &model, const math::Matrix &x,
              const EvalOptions &options)
{
    // Compile once, run batched (sharded across options.jobs cores): the
    // plan replays the reference interpreter's fixed-point semantics
    // bit-for-bit at any shard width.
    runtime::EngineOptions engine_options;
    engine_options.jobs = options.jobs;
    engine_options.executor = options.executor;
    runtime::InferenceEngine engine(ir::ExecutablePlan::compile(model),
                                    engine_options);
    if (options.quantCache != nullptr && options.quantCache->covers(x))
        return engine.run(options.quantCache->get(model.format));
    return engine.run(x);
}

std::vector<int>
Platform::evaluate(const ir::ModelIr &model, const math::Matrix &x,
                   const EvalOptions &options) const
{
    return runPlanBacked(model, x, options);
}

std::string
ResourceReport::summary() const
{
    std::string perf = common::format(
        "latency=%.1fns throughput=%.2fGpps", latencyNs, throughputGpps);
    std::string res;
    if (computeUnits > 0 || memoryUnits > 0)
        res = common::format("CUs=%zu MUs=%zu ", computeUnits, memoryUnits);
    if (matTables > 0)
        res += common::format("MATs=%zu entries=%zu ", matTables, matEntries);
    if (lutPercent > 0.0) {
        res += common::format("LUT=%.2f%% FF=%.2f%% BRAM=%.2f%% P=%.3fW ",
                              lutPercent, ffPercent, bramPercent, powerWatts);
    }
    std::string verdict = feasible ? "FEASIBLE"
                                   : "INFEASIBLE(" + infeasibleReason + ")";
    return res + perf + " " + verdict;
}

}  // namespace homunculus::backends
