/**
 * @file
 * P4_16 code generator for MAT-mapped models (IIsy methodology).
 *
 * Emits a complete P4 program: header/metadata definitions, a parser, one
 * match-action table per IIsy stage with const entries holding the
 * quantized model constants, and an apply block wiring the pipeline.
 * Mirrors the structure MatPipeline executes, so the emitted program and
 * the simulated pipeline agree table-for-table.
 */
#pragma once

#include <string>

#include "ir/model_ir.hpp"

namespace homunculus::backends {

/** Emits P4 programs from ModelIr. */
class P4Codegen
{
  public:
    explicit P4Codegen(std::size_t bins_per_feature = 64);

    /** Generate the program; throws for MLPs (not MAT-mappable). */
    std::string generate(const ir::ModelIr &model) const;

  private:
    std::string headerSection(const ir::ModelIr &model) const;
    std::string kmeansTables(const ir::ModelIr &model) const;
    std::string svmTables(const ir::ModelIr &model) const;
    std::string treeTables(const ir::ModelIr &model) const;

    std::size_t binsPerFeature_;
};

}  // namespace homunculus::backends
