#include "backends/mapreduce_sim.hpp"

namespace homunculus::backends {

MapReduceSimulator::MapReduceSimulator(TaurusConfig config) : config_(config)
{
}

PacketSimResult
MapReduceSimulator::runPacket(const ir::ModelIr &model,
                              const std::vector<double> &features) const
{
    PacketSimResult result;
    result.label = ir::executeIr(model, features);
    result.cycles = taurusMappingCost(config_, model).fillCycles;
    return result;
}

StreamSimResult
MapReduceSimulator::runStream(const ir::ModelIr &model,
                              const math::Matrix &x) const
{
    TaurusMappingCost cost = taurusMappingCost(config_, model);
    StreamSimResult result;
    result.labels.reserve(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i)
        result.labels.push_back(ir::executeIr(model, x.row(i)));

    double n = static_cast<double>(x.rows());
    result.totalCycles = n > 0 ? cost.fillCycles + (n - 1.0) * cost.ii : 0.0;
    result.latencyNs = cost.fillCycles / config_.clockGhz;
    result.throughputGpps = config_.clockGhz / cost.ii;
    return result;
}

}  // namespace homunculus::backends
