#include "backends/mapreduce_sim.hpp"

#include "ir/exec_plan.hpp"

namespace homunculus::backends {

MapReduceSimulator::MapReduceSimulator(TaurusConfig config) : config_(config)
{
}

PacketSimResult
MapReduceSimulator::runPacket(const ir::ModelIr &model,
                              const std::vector<double> &features) const
{
    PacketSimResult result;
    // One-off packets stay on the scalar interpreter: compiling a plan
    // per call would cost more than it saves. Streams compile once.
    result.label = ir::executeIr(model, features);
    result.cycles = taurusMappingCost(config_, model).fillCycles;
    return result;
}

StreamSimResult
MapReduceSimulator::runStream(const ir::ModelIr &model,
                              const math::Matrix &x,
                              const EvalOptions &options) const
{
    TaurusMappingCost cost = taurusMappingCost(config_, model);
    StreamSimResult result;
    // Compile the model once for the whole stream; the plan executes the
    // batch without the per-packet row copies the interpreter path paid,
    // sharded across options.jobs host cores (labels are bit-identical
    // at any width) and skipping re-quantization via the caller's cache.
    result.labels = runPlanBacked(model, x, options);

    double n = static_cast<double>(x.rows());
    result.totalCycles = n > 0 ? cost.fillCycles + (n - 1.0) * cost.ii : 0.0;
    result.latencyNs = cost.fillCycles / config_.clockGhz;
    result.throughputGpps = config_.clockGhz / cost.ii;
    return result;
}

}  // namespace homunculus::backends
