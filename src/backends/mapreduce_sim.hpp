/**
 * @file
 * Cycle-approximate simulator of the Taurus MapReduce block.
 *
 * Substitution (see DESIGN.md): stands in for the SARA/Tungsten
 * cycle-accurate toolchain the paper uses for feasibility testing. The
 * simulator executes the *quantized* model (same fixed-point semantics as
 * ir::executeIr, via a once-compiled ir::ExecutablePlan) while accounting
 * cycles with the same per-layer cost model the mapper uses, so
 * functional results and timing verdicts come from one artifact.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "backends/taurus.hpp"

namespace homunculus::backends {

/** Outcome of pushing one packet through the simulated pipeline. */
struct PacketSimResult
{
    int label = 0;
    double cycles = 0.0;  ///< end-to-end pipeline occupancy for the packet.
};

/** Outcome of streaming a batch of packets back-to-back. */
struct StreamSimResult
{
    std::vector<int> labels;
    double totalCycles = 0.0;   ///< fill + (n-1) * II.
    double latencyNs = 0.0;     ///< single-packet latency.
    double throughputGpps = 0.0;  ///< steady-state rate.
};

/** The simulator proper. */
class MapReduceSimulator
{
  public:
    explicit MapReduceSimulator(TaurusConfig config = {});

    /** Single-packet inference with cycle accounting. */
    PacketSimResult runPacket(const ir::ModelIr &model,
                              const std::vector<double> &features) const;

    /** Pipelined stream: packets enter every II cycles after fill.
     *  @p options controls host-side execution only (row-shard width,
     *  quantization reuse); labels and cycle accounting are identical
     *  for every value. */
    StreamSimResult runStream(const ir::ModelIr &model,
                              const math::Matrix &x,
                              const EvalOptions &options = {}) const;

    const TaurusConfig &config() const { return config_; }

  private:
    TaurusConfig config_;
};

}  // namespace homunculus::backends
