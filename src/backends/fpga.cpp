#include "backends/fpga.hpp"

#include <cmath>

#include "backends/registry.hpp"
#include "backends/spatial_codegen.hpp"
#include "common/string_util.hpp"

namespace homunculus::backends {

FpgaPlatform::FpgaPlatform(FpgaConfig config) : config_(config)
{
    // The FPGA NIC path tolerates far more latency than a switch ASIC and
    // runs at 100 GbE line rate; relax the default envelope accordingly.
    constraints_.minThroughputGpps = 0.1;
    constraints_.maxLatencyNs = 2000.0;
}

AlgorithmSupport
FpgaPlatform::supports(ir::ModelKind kind) const
{
    (void)kind;  // reconfigurable fabric hosts every family.
    return AlgorithmSupport::kSupported;
}

ResourceReport
FpgaPlatform::loopbackReport() const
{
    ResourceReport report;
    report.lutPercent = config_.shellLutPercent;
    report.ffPercent = config_.shellFfPercent;
    report.bramPercent = config_.shellBramPercent;
    report.powerWatts = config_.shellPowerWatts;
    report.latencyNs = config_.cmacLatencyNs;
    report.throughputGpps = config_.lineRateGpps;
    report.feasible = true;
    return report;
}

ResourceReport
FpgaPlatform::estimate(const ir::ModelIr &model) const
{
    double params = static_cast<double>(model.paramCount());
    double layers = static_cast<double>(
        model.kind == ir::ModelKind::kMlp ? model.layers.size() : 1);

    double lut_delta = config_.lutFixed + config_.lutPerParam * params;
    double ff_delta = config_.ffFixed + config_.ffPerParam * params +
                      config_.ffPerLayer * layers;
    double bram_delta = 0.0;
    if (model.paramCount() > config_.bramWordThreshold) {
        double blocks = std::ceil(
            (params - static_cast<double>(config_.bramWordThreshold)) /
            static_cast<double>(config_.bramWordThreshold));
        bram_delta = blocks * config_.bramPerBlockPercent;
    }

    ResourceReport report;
    report.lutPercent = config_.shellLutPercent + lut_delta;
    report.ffPercent = config_.shellFfPercent + ff_delta;
    report.bramPercent = config_.shellBramPercent + bram_delta;
    report.powerWatts = config_.shellPowerWatts +
                        config_.powerPerLutPercent * lut_delta +
                        config_.powerPerFfPercent * ff_delta;

    // Latency: CMAC ingress/egress plus one pipeline stage per layer
    // (Spatial fully pipelines the dot products).
    double pipeline_cycles = 4.0;
    if (model.kind == ir::ModelKind::kMlp) {
        for (const auto &layer : model.layers)
            pipeline_cycles +=
                std::ceil(std::log2(
                    std::max<double>(2.0,
                                     static_cast<double>(layer.inputDim)))) +
                2.0;
    } else {
        pipeline_cycles += 8.0;
    }
    report.latencyNs = config_.cmacLatencyNs +
                       pipeline_cycles / config_.clockGhz;
    report.throughputGpps = config_.lineRateGpps;

    bool capped = config_.lutBudgetPercent < 100.0 ||
                  config_.ffBudgetPercent < 100.0 ||
                  config_.bramBudgetPercent < 100.0;
    report.feasible = true;
    if (report.lutPercent > config_.lutBudgetPercent ||
        report.ffPercent > config_.ffBudgetPercent ||
        report.bramPercent > config_.bramBudgetPercent) {
        report.feasible = false;
        report.infeasibleReason =
            capped ? common::format(
                         "FPGA utilization above budget (LUT %.2f/%.2f%% "
                         "FF %.2f/%.2f%% BRAM %.2f/%.2f%%)",
                         report.lutPercent, config_.lutBudgetPercent,
                         report.ffPercent, config_.ffBudgetPercent,
                         report.bramPercent, config_.bramBudgetPercent)
                   : "FPGA resource utilization above 100%";
    } else if (config_.powerBudgetWatts > 0.0 &&
               report.powerWatts > config_.powerBudgetWatts) {
        report.feasible = false;
        report.infeasibleReason = common::format(
            "board power %.3f W above %.3f W budget", report.powerWatts,
            config_.powerBudgetWatts);
    } else if (report.throughputGpps < constraints_.minThroughputGpps) {
        report.feasible = false;
        report.infeasibleReason = "line rate below required throughput";
    } else if (report.latencyNs > constraints_.maxLatencyNs) {
        report.feasible = false;
        report.infeasibleReason = common::format(
            "latency %.1f above %.1f ns", report.latencyNs,
            constraints_.maxLatencyNs);
    }
    return report;
}

std::string
FpgaPlatform::generateCode(const ir::ModelIr &model) const
{
    SpatialCodegen codegen;
    return codegen.generate(model);
}

PlatformPtr
FpgaPlatform::withBudget(const ResourceBudget &budget) const
{
    if (!budget.fpgaLutPercent && !budget.fpgaFfPercent &&
        !budget.fpgaBramPercent && !budget.fpgaPowerWatts)
        return nullptr;
    FpgaConfig config = config_;
    if (budget.fpgaLutPercent)
        config.lutBudgetPercent = *budget.fpgaLutPercent;
    if (budget.fpgaFfPercent)
        config.ffBudgetPercent = *budget.fpgaFfPercent;
    if (budget.fpgaBramPercent)
        config.bramBudgetPercent = *budget.fpgaBramPercent;
    if (budget.fpgaPowerWatts)
        config.powerBudgetWatts = *budget.fpgaPowerWatts;
    auto rebuilt = std::make_shared<FpgaPlatform>(config);
    rebuilt->setConstraints(constraints_);
    return rebuilt;
}

bool
registerFpgaBackend()
{
    return BackendRegistry::instance().registerFactory(
        "fpga", [](const BackendParams &params) -> PlatformPtr {
            if (const auto *config =
                    std::any_cast<FpgaConfig>(&params.typedConfig))
                return std::make_shared<FpgaPlatform>(*config);
            FpgaConfig config;
            config.lutBudgetPercent =
                params.numberOr("lut_budget", config.lutBudgetPercent);
            config.ffBudgetPercent =
                params.numberOr("ff_budget", config.ffBudgetPercent);
            config.bramBudgetPercent =
                params.numberOr("bram_budget", config.bramBudgetPercent);
            config.powerBudgetWatts =
                params.numberOr("power_budget", config.powerBudgetWatts);
            return std::make_shared<FpgaPlatform>(config);
        });
}

}  // namespace homunculus::backends
