/**
 * @file
 * FPGA backend: Alveo-style resource utilization and power model.
 *
 * Substitution (see DESIGN.md): the paper's end-to-end evaluation (Table 5)
 * maps models through Spatial/Vivado onto an Alveo U250 bump-in-the-wire
 * and reports LUT/FF/BRAM utilization and board power. Vivado is not
 * available offline, so this backend provides an analytic model calibrated
 * to Table 5's loopback baseline: a fixed shell cost plus per-parameter
 * and per-layer increments (LUTs store model parameters on the FPGA, so
 * LUT growth tracks parameter count; FF growth tracks pipeline registers;
 * BRAM stays at the shell allocation until buffers overflow a threshold).
 */
#pragma once

#include "backends/platform.hpp"

namespace homunculus::backends {

/** Calibration constants of the FPGA model. */
struct FpgaConfig
{
    // Shell (loopback) baseline, from Table 5's first row.
    double shellLutPercent = 5.36;
    double shellFfPercent = 3.64;
    double shellBramPercent = 4.15;
    double shellPowerWatts = 15.131;

    // Per-model increments.
    double lutPerParam = 0.0040;     ///< LUT% per stored parameter.
    double lutFixed = 0.30;          ///< datapath fixed overhead.
    double ffPerParam = 0.0020;      ///< FF% per parameter.
    double ffFixed = 0.20;
    double ffPerLayer = 0.02;        ///< pipeline registers per stage.
    std::size_t bramWordThreshold = 4096;  ///< params before BRAM spill.
    double bramPerBlockPercent = 1.04;

    // Power: dominated by LUT switching, secondarily FF toggling.
    double powerPerLutPercent = 1.30;
    double powerPerFfPercent = 0.45;

    // Timing: Spatial pipelines on the U250 close around 250 MHz.
    double clockGhz = 0.25;
    double cmacLatencyNs = 250.0;    ///< CMAC + AXI ingress/egress.
    double lineRateGpps = 0.148;     ///< 100 GbE at min-size packets.

    // Operator budget caps (ResourceBudget / Alchemy `constrain`).
    // Utilization above a cap makes the mapping infeasible; 100% / 0 W
    // leave the fabric uncapped.
    double lutBudgetPercent = 100.0;
    double ffBudgetPercent = 100.0;
    double bramBudgetPercent = 100.0;
    double powerBudgetWatts = 0.0;   ///< 0 = unlimited board power.
};

/** The FPGA backend. */
class FpgaPlatform : public Platform
{
  public:
    explicit FpgaPlatform(FpgaConfig config = {});

    std::string name() const override { return "fpga"; }
    AlgorithmSupport supports(ir::ModelKind kind) const override;
    ResourceReport estimate(const ir::ModelIr &model) const override;
    // evaluate(): the FPGA executes the same fixed-point artifact as the
    // reference semantics, so the plan-backed Platform default applies.
    std::string generateCode(const ir::ModelIr &model) const override;

    /** The loopback (shell-only) report — Table 5's baseline row. */
    ResourceReport loopbackReport() const;

    PlatformPtr withBudget(const ResourceBudget &budget) const override;

    const FpgaConfig &config() const { return config_; }

  private:
    FpgaConfig config_;
};

/** Self-registration hook ("fpga"); idempotent. */
bool registerFpgaBackend();

}  // namespace homunculus::backends
