/**
 * @file
 * Match-action-table (MAT) pipeline interpreter with IIsy-style mappings.
 *
 * Substitution (see DESIGN.md): stands in for a Tofino/P4-SDNet pipeline
 * executing IIsy's classical-ML mappings. The interpreter models a PISA
 * pipeline as an ordered list of tables; a packet carries a metadata
 * vector of per-class accumulators plus a state register through the
 * stages, and each table performs a lookup + ALU action:
 *
 *  - KMeans (paper §5.2.2): one MAT per cluster. Each cluster table holds
 *    the centroid constants and its action accumulates the squared
 *    distance into the cluster's metadata slot; the final cluster table
 *    also performs the arg-min selection. Tables consumed = k.
 *  - SVM (paper §4): one MAT per feature. Each feature table range-matches
 *    the quantized feature value into a bin and its action adds the
 *    per-class contribution w_c[f] * bin_center; the last table arg-maxes.
 *    Tables consumed = number of features.
 *  - Decision tree: one MAT per level. Entries match (state = node id,
 *    feature value range) and the action writes the next node id or the
 *    leaf label. Tables consumed = tree depth.
 *
 * DNNs are not MAT-mappable at these sizes (N2Net needs ~12 MATs per
 * layer); MatPlatform reports them unsupported, which is what drives the
 * optimization core to prune the DNN family for MAT targets.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/exec_plan.hpp"
#include "ir/model_ir.hpp"

namespace homunculus::runtime {
class Executor;
}

namespace homunculus::backends {

/** A range-match entry: [lo, hi] on the stage key -> action payload. */
struct MatEntry
{
    std::int32_t lo = 0;
    std::int32_t hi = 0;
    /** Per-class ALU operands (contribution added per class slot). */
    std::vector<std::int64_t> classContribution;
    /** Next-state write for tree traversal (-1 = unused). */
    std::int32_t nextState = -1;
    /** Leaf label write (-1 = unused). */
    int labelWrite = -1;
};

/** What a stage does after its lookup. */
enum class MatStageKind {
    kAccumulate,   ///< add classContribution to per-class accumulators.
    kDistance,     ///< accumulate squared distance to stored centroid.
    kTreeLevel,    ///< state-machine step for a tree level.
    kSelectMin,    ///< write argmin(accumulators) to the packet label.
    kSelectMax,    ///< write argmax(accumulators) to the packet label.
};

/** One physical match-action table. */
struct MatTable
{
    std::string name;
    MatStageKind kind = MatStageKind::kAccumulate;
    /** Feature index keyed by this table (unused for select stages). */
    std::size_t keyField = 0;
    std::vector<MatEntry> entries;
    /** Centroid constants for kDistance stages (one per feature). */
    std::vector<std::int32_t> centroid;
    /** Accumulator slot a kDistance stage writes. */
    std::size_t classSlot = 0;
    /** Whether this table also performs the final selection. */
    bool fusedSelect = false;
    bool selectMin = false;  ///< fused selection polarity.

    /**
     * Bucketized lookup indexes over the entries (built once at compile
     * time) so the per-packet walk binary-searches sorted entry bounds
     * instead of scanning linearly. Only the index this table's stage
     * kind consults is built — accumulate stages the range index, tree
     * levels the group index, distance/select stages neither. Entry
     * storage order is untouched (codegen and capacity accounting see
     * the installed order), and an index is used only when its
     * verification proved it reproduces the linear first-match
     * semantics exactly; tables that fail verification keep the linear
     * walk (and carry no index data).
     *
     * Range index (the accumulate stages — SVM feature bins):
     * `orderedHi` mirrors the entries' hi bounds in storage order;
     * `rangeIndexed` is set when both lo and hi are non-decreasing in
     * storage order. Then the first entry whose hi >= key is the first
     * possible match in original order (every earlier entry ends below
     * key, every later one starts at or above this one), even for bins
     * that share boundary points.
     */
    std::vector<std::int32_t> orderedHi;
    bool rangeIndexed = false;

    /**
     * Exact-match group index (the tree-level stages): entry positions
     * stable-sorted ascending by lo plus the sorted keys, so a state's
     * whole entry group is found by binary search and scanned in
     * original order. Requires every entry exact (lo == hi);
     * `groupIndexed` is set when that verifies.
     */
    std::vector<std::int32_t> sortedLo;
    std::vector<std::uint32_t> sortedOrder;
    bool groupIndexed = false;
};

/** A compiled MAT program plus the packet-walk interpreter. */
class MatPipeline
{
  public:
    /** Compile IIsy mappings from a ModelIr. */
    static MatPipeline compileKMeans(const ir::ModelIr &model);
    static MatPipeline compileSvm(const ir::ModelIr &model,
                                  std::size_t bins_per_feature);
    static MatPipeline compileTree(const ir::ModelIr &model);

    /** Per-packet pipeline walk; returns the classified label. */
    int process(const std::vector<double> &features) const;

    /**
     * Reference walk using the linear first-match entry scan — the
     * semantic spec the bucketized binary-search index must reproduce
     * bit-for-bit (differential-tested against process()). Not a hot
     * path; exists so the index can always be checked against the
     * original table semantics.
     */
    int processLinear(const std::vector<double> &features) const;

    /**
     * Batched walk over a feature matrix: quantization buffers and class
     * accumulators are hoisted out of the per-packet loop, rows are read
     * in place (no per-row copies), and the row loop shards across up to
     * @p jobs threads (0 = one per hardware thread) on @p executor
     * (nullptr = the process-default runtime::Executor) — the walk is
     * per-row independent, so labels are identical to calling process()
     * on each row at any width. @p pre_quantized, when non-null and in
     * this pipeline's format, skips input quantization entirely.
     */
    std::vector<int> processBatch(
        const math::Matrix &x, std::size_t jobs = 1,
        const ir::QuantizedMatrix *pre_quantized = nullptr,
        runtime::Executor *executor = nullptr) const;

    std::size_t numTables() const { return tables_.size(); }
    std::size_t totalEntries() const;
    const std::vector<MatTable> &tables() const { return tables_; }
    const common::FixedPointFormat &format() const { return format_; }

    /**
     * Pin this pipeline's batched walk to one kernel target instead of
     * the process-wide KernelDispatch resolution — the MAT mirror of
     * ExecutablePlan::forceKernelTarget, so differential harnesses can
     * run a scalar-pinned pipeline next to a vectorized one in the
     * same process without the global KernelDispatch::force()/reset()
     * dance (which is process-wide state and races any concurrent
     * batch). Labels never change; only the instruction mix does.
     * @throws std::runtime_error when the target is unavailable here.
     */
    void forceKernelTarget(kernels::KernelTarget target);

    /** The pinned table, or nullptr when following KernelDispatch. */
    const kernels::KernelOps *forcedKernels() const
    {
        return forcedOps_;
    }

  private:
    explicit MatPipeline(common::FixedPointFormat format)
        : format_(format), narrow_(format.totalBits() <= 16)
    {
    }

    /** The table walk over an already-quantized packet; @p accumulators
     *  must hold numClasses zeros on entry. @p use_index selects the
     *  bucketized binary-search entry lookup (process) or the linear
     *  reference scan (processLinear); results are identical. */
    int walk(const std::int32_t *quantized, std::int64_t *accumulators,
             bool use_index) const;

    /**
     * Stage-major walk of a whole row chunk (the processBatch hot
     * path): instead of running every table per packet, each table
     * stage resolves all @p count rows before the next stage runs —
     * range-match stages batch their bucket lookups through the
     * dispatch kernel layer (kernels::KernelOps::rangeLowerBound), and
     * distance stages the fused squared-distance reduction. Per-row
     * results are bit-identical to walk(q, acc, use_index=true) — the
     * stages only commute across rows, never within one.
     * All arrays are caller-owned chunk scratch: @p rows holds count
     * quantized-row pointers; accumulators (count x numClasses), states,
     * labels, written, lookup and keys (count each) are initialized
     * here.
     */
    void walkChunk(const std::int32_t *const *rows, std::size_t count,
                   std::int64_t *accumulators, std::int32_t *states,
                   int *labels, std::uint8_t *written,
                   std::uint32_t *lookup, std::int32_t *keys) const;

    /** Build every table's lookup index; called by the compile*
     *  factories after the entries are installed. */
    void buildLookupIndexes();

    std::vector<MatTable> tables_;
    common::FixedPointFormat format_;
    std::size_t numClasses_ = 0;
    std::size_t inputDim_ = 0;
    /** Format fits 16 bits: feature differences fit int32, so the
     *  vectorized distance kernel is exact (wide formats keep the
     *  int64 scalar loop). */
    bool narrow_ = true;
    /** Pinned kernel table (forceKernelTarget); nullptr = follow the
     *  process-wide KernelDispatch. Points at immutable static data,
     *  so copies of the pipeline share it safely. */
    const kernels::KernelOps *forcedOps_ = nullptr;
};

}  // namespace homunculus::backends
