/**
 * @file
 * ResourceReport and the performance-constraint envelope.
 *
 * The report is the only feedback channel from a backend to the
 * optimization core (paper §3.3): resources consumed, the latency and
 * throughput the mapping achieves, and the resulting feasibility verdict.
 */
#pragma once

#include <cstddef>
#include <string>

namespace homunculus::backends {

/** The operator-specified performance envelope (Alchemy `constrain`). */
struct PerfConstraints
{
    double minThroughputGpps = 1.0;  ///< packets/ns, paper default 1 GPkt/s.
    double maxLatencyNs = 500.0;     ///< end-to-end pipeline latency budget.
};

/** Resources and performance of one model mapped onto one platform. */
struct ResourceReport
{
    // --- Taurus / CGRA resources ---------------------------------------
    std::size_t computeUnits = 0;  ///< CUs consumed.
    std::size_t memoryUnits = 0;   ///< MUs consumed.

    // --- MAT-pipeline resources ----------------------------------------
    std::size_t matTables = 0;     ///< match-action tables consumed.
    std::size_t matEntries = 0;    ///< total table entries installed.

    // --- FPGA resources --------------------------------------------------
    double lutPercent = 0.0;
    double ffPercent = 0.0;
    double bramPercent = 0.0;
    double powerWatts = 0.0;

    // --- Performance -----------------------------------------------------
    double latencyNs = 0.0;
    double throughputGpps = 0.0;

    // --- Verdict ----------------------------------------------------------
    bool feasible = false;
    std::string infeasibleReason;  ///< empty when feasible.

    /** Human-readable one-line summary for logs and reports. */
    std::string summary() const;
};

}  // namespace homunculus::backends
