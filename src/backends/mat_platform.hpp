/**
 * @file
 * MAT-based switch platform (Tofino-style PISA pipeline with IIsy mapping).
 *
 * Match-action tables are the constraining resource (paper §3, §4): the
 * platform owns a fixed stage budget and entry capacity, runs at line
 * rate whenever the mapping fits, and has a fixed pipeline latency per
 * stage. Model families map as described in mat_pipeline.hpp; DNNs are
 * unsupported (N2Net-style BNN lowering needs ~12 MATs per layer, beyond
 * any realistic budget here), which drives the optimization core's
 * algorithm pruning for MAT targets.
 */
#pragma once

#include "backends/mat_pipeline.hpp"
#include "backends/platform.hpp"

namespace homunculus::backends {

/** Physical description of the MAT pipeline. */
struct MatConfig
{
    std::size_t numTables = 12;       ///< stage budget (Tofino-like).
    std::size_t entriesPerTable = 1024;
    std::size_t binsPerFeature = 64;  ///< SVM range-binning granularity.
    double perStageLatencyNs = 30.0;
    double parserLatencyNs = 100.0;
    double lineRateGpps = 1.0;        ///< fixed line rate when mapped.
    std::size_t matsPerDnnLayer = 12; ///< N2Net estimate for BNN layers.
};

/** The MAT-switch backend. */
class MatPlatform : public Platform
{
  public:
    explicit MatPlatform(MatConfig config = {});

    std::string name() const override { return "tofino-mat"; }
    AlgorithmSupport supports(ir::ModelKind kind) const override;
    ResourceReport estimate(const ir::ModelIr &model) const override;
    std::vector<int> evaluate(const ir::ModelIr &model,
                              const math::Matrix &x,
                              const EvalOptions &options = {}) const override;
    std::string generateCode(const ir::ModelIr &model) const override;

    /** Compile the IIsy pipeline for a model (shared with evaluate()). */
    MatPipeline compile(const ir::ModelIr &model) const;

    PlatformPtr withBudget(const ResourceBudget &budget) const override;

    const MatConfig &config() const { return config_; }

  private:
    MatConfig config_;
};

/** Self-registration hook ("tofino" + "tofino-mat"); idempotent. */
bool registerMatBackend();

}  // namespace homunculus::backends
