#include "backends/mat_platform.hpp"

#include <stdexcept>

#include "backends/p4_codegen.hpp"
#include "backends/registry.hpp"
#include "common/string_util.hpp"
#include "runtime/quant_cache.hpp"

namespace homunculus::backends {

MatPlatform::MatPlatform(MatConfig config) : config_(config)
{
}

AlgorithmSupport
MatPlatform::supports(ir::ModelKind kind) const
{
    return kind == ir::ModelKind::kMlp ? AlgorithmSupport::kUnsupported
                                       : AlgorithmSupport::kSupported;
}

MatPipeline
MatPlatform::compile(const ir::ModelIr &model) const
{
    switch (model.kind) {
      case ir::ModelKind::kKMeans:
        return MatPipeline::compileKMeans(model);
      case ir::ModelKind::kSvm:
        return MatPipeline::compileSvm(model, config_.binsPerFeature);
      case ir::ModelKind::kDecisionTree:
        return MatPipeline::compileTree(model);
      case ir::ModelKind::kMlp:
        break;
    }
    throw std::runtime_error("MatPlatform: cannot compile DNN to MATs");
}

ResourceReport
MatPlatform::estimate(const ir::ModelIr &model) const
{
    ResourceReport report;

    if (model.kind == ir::ModelKind::kMlp) {
        // Report the N2Net-style cost so the optimizer sees *why* the DNN
        // family is hopeless on this target rather than a silent error.
        report.matTables = config_.matsPerDnnLayer * model.layers.size();
        report.feasible = false;
        report.infeasibleReason = common::format(
            "DNN needs ~%zu MATs (budget %zu)", report.matTables,
            config_.numTables);
        return report;
    }

    MatPipeline pipeline = compile(model);
    report.matTables = pipeline.numTables();
    report.matEntries = pipeline.totalEntries();
    report.latencyNs =
        config_.parserLatencyNs +
        static_cast<double>(pipeline.numTables()) * config_.perStageLatencyNs;
    report.throughputGpps = config_.lineRateGpps;

    report.feasible = true;
    if (pipeline.numTables() > config_.numTables) {
        report.feasible = false;
        report.infeasibleReason = common::format(
            "%zu MATs exceed budget %zu", pipeline.numTables(),
            config_.numTables);
    } else {
        for (const auto &table : pipeline.tables()) {
            if (table.entries.size() > config_.entriesPerTable) {
                report.feasible = false;
                report.infeasibleReason = common::format(
                    "table %s has %zu entries (capacity %zu)",
                    table.name.c_str(), table.entries.size(),
                    config_.entriesPerTable);
                break;
            }
        }
    }
    if (report.feasible &&
        report.throughputGpps < constraints_.minThroughputGpps) {
        report.feasible = false;
        report.infeasibleReason = "line rate below required throughput";
    }
    if (report.feasible && report.latencyNs > constraints_.maxLatencyNs) {
        report.feasible = false;
        report.infeasibleReason = common::format(
            "latency %.1f above %.1f ns", report.latencyNs,
            constraints_.maxLatencyNs);
    }
    return report;
}

std::vector<int>
MatPlatform::evaluate(const ir::ModelIr &model, const math::Matrix &x,
                      const EvalOptions &options) const
{
    // Compile the MAT program once, then walk the whole batch sharded
    // across options.jobs cores; labels match per-row process() exactly.
    // A quantization cache bound to this matrix lets the walk skip
    // re-quantizing the partition when the model's format was seen.
    const ir::QuantizedMatrix *pre = nullptr;
    if (options.quantCache != nullptr && options.quantCache->covers(x))
        pre = &options.quantCache->get(model.format);
    return compile(model).processBatch(x, options.jobs, pre,
                                       options.executor);
}

std::string
MatPlatform::generateCode(const ir::ModelIr &model) const
{
    P4Codegen codegen(config_.binsPerFeature);
    return codegen.generate(model);
}

PlatformPtr
MatPlatform::withBudget(const ResourceBudget &budget) const
{
    if (!budget.matTables && !budget.matEntriesPerTable)
        return nullptr;
    MatConfig config = config_;
    if (budget.matTables)
        config.numTables = *budget.matTables;
    if (budget.matEntriesPerTable)
        config.entriesPerTable = *budget.matEntriesPerTable;
    auto rebuilt = std::make_shared<MatPlatform>(config);
    rebuilt->setConstraints(constraints_);
    return rebuilt;
}

bool
registerMatBackend()
{
    auto factory = [](const BackendParams &params) -> PlatformPtr {
        if (const auto *config =
                std::any_cast<MatConfig>(&params.typedConfig))
            return std::make_shared<MatPlatform>(*config);
        MatConfig config;
        config.numTables = params.sizeOr("tables", config.numTables);
        config.entriesPerTable =
            params.sizeOr("entries", config.entriesPerTable);
        config.binsPerFeature =
            params.sizeOr("bins", config.binsPerFeature);
        return std::make_shared<MatPlatform>(config);
    };
    bool tofino = BackendRegistry::instance().registerFactory("tofino",
                                                              factory);
    // The platform's self-reported name is "tofino-mat"; register both so
    // lookups by either spelling resolve.
    bool alias = BackendRegistry::instance().registerFactory("tofino-mat",
                                                             factory);
    return tofino && alias;
}

}  // namespace homunculus::backends
