/**
 * @file
 * Abstract data-plane platform: the backend interface of the compiler.
 *
 * A Platform answers three questions about a ModelIr (paper §3.3):
 *  - estimate(): what resources does the mapping consume and does it meet
 *    the performance envelope? (feasibility testing)
 *  - evaluate(): what does the deployed artifact predict? (executed via
 *    the platform's own simulator, in fixed point)
 *  - generateCode(): what platform program implements it? (Spatial / P4)
 */
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "backends/resource_report.hpp"
#include "ir/model_ir.hpp"

namespace homunculus::runtime {
class Executor;
class QuantCache;
}

namespace homunculus::backends {

/** Families of models a platform can accept at all. */
enum class AlgorithmSupport { kSupported, kUnsupported };

/**
 * Resource limits the operator can cap a platform to (Alchemy's
 * `constrain`). Every field is optional; each backend honors the knobs
 * that describe its fabric and ignores the rest.
 */
struct ResourceBudget
{
    std::optional<std::size_t> gridRows;   ///< Taurus grid rows.
    std::optional<std::size_t> gridCols;   ///< Taurus grid cols.
    std::optional<std::size_t> matTables;  ///< MAT stage budget.
    std::optional<std::size_t> matEntriesPerTable;  ///< MAT entry budget.
    std::optional<double> fpgaLutPercent;   ///< FPGA LUT utilization cap.
    std::optional<double> fpgaFfPercent;    ///< FPGA FF utilization cap.
    std::optional<double> fpgaBramPercent;  ///< FPGA BRAM utilization cap.
    std::optional<double> fpgaPowerWatts;   ///< FPGA board power cap.
};

/**
 * Host-side execution knobs for Platform::evaluate. The model semantics
 * never change — these only control how fast the simulator gets through
 * a batch: @c jobs shards rows across cores (runtime::InferenceEngine),
 * and @c quantCache lets repeated evaluations of one partition skip
 * re-quantizing it when the model's format was already seen (candidate
 * scoring inside the Bayesian search). Both default to off.
 */
struct EvalOptions
{
    /** Row-shard width (0 = one per hardware thread, 1 = inline). */
    std::size_t jobs = 1;
    /** Optional format-keyed quantization cache; used only when it is
     *  bound to the exact matrix being evaluated. */
    const runtime::QuantCache *quantCache = nullptr;
    /** Worker pool the shards run on (nullptr = the process-default
     *  runtime::Executor); compile-time search and serving-time
     *  inference share one pool instead of competing spawns. */
    runtime::Executor *executor = nullptr;
};

/**
 * The plan-backed execution every non-MAT simulator shares: compile the
 * model into an ir::ExecutablePlan once, shard the batch across
 * @p options.jobs cores, and reuse @p options.quantCache when it covers
 * @p x. Platform::evaluate's default and the Taurus stream simulator
 * both dispatch through here so the cache-eligibility and sharding
 * rules cannot drift apart.
 */
std::vector<int> runPlanBacked(const ir::ModelIr &model,
                               const math::Matrix &x,
                               const EvalOptions &options);

/** Abstract backend target. */
class Platform
{
  public:
    virtual ~Platform() = default;

    /** Short identifier, e.g. "taurus", "tofino-mat", "fpga". */
    virtual std::string name() const = 0;

    /** Whether this platform can host the given model family at all. */
    virtual AlgorithmSupport supports(ir::ModelKind kind) const = 0;

    /** Map the model and report resources + performance + feasibility. */
    virtual ResourceReport estimate(const ir::ModelIr &model) const = 0;

    /**
     * Execute the deployed (quantized) model on the platform's simulator.
     * The default compiles the model into an ir::ExecutablePlan and runs
     * the batched reference fixed-point semantics — sharded across
     * @p options.jobs cores and reusing @p options.quantCache when set;
     * backends whose fabric executes differently (e.g. MAT range-match
     * binning) override it and honor the same knobs. Predictions are
     * identical for every EvalOptions value.
     * @return predicted class per row of @p x
     */
    virtual std::vector<int> evaluate(const ir::ModelIr &model,
                                      const math::Matrix &x,
                                      const EvalOptions &options = {}) const;

    /** Emit the platform program implementing the model. */
    virtual std::string generateCode(const ir::ModelIr &model) const = 0;

    /**
     * Rebuild this platform with the budget's relevant caps applied
     * (current constraints carry over). Returns nullptr when no field of
     * @p budget concerns this backend, meaning "keep the instance as-is".
     */
    virtual std::shared_ptr<Platform>
    withBudget(const ResourceBudget &budget) const
    {
        (void)budget;
        return nullptr;
    }

    /** The operator-specified performance envelope. */
    const PerfConstraints &constraints() const { return constraints_; }
    void setConstraints(const PerfConstraints &constraints)
    {
        constraints_ = constraints;
    }

  protected:
    PerfConstraints constraints_;
};

using PlatformPtr = std::shared_ptr<Platform>;

}  // namespace homunculus::backends
