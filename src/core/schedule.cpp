#include "core/schedule.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace homunculus::core {

ScheduleResources
composeResources(
    const ScheduleNode &node,
    const std::map<std::string, backends::ResourceReport> &reports)
{
    ScheduleResources out;
    switch (node.kind) {
      case ScheduleNode::Kind::kModel: {
        auto it = reports.find(node.spec->name);
        if (it == reports.end())
            throw std::runtime_error("composeResources: missing report for " +
                                     node.spec->name);
        const backends::ResourceReport &report = it->second;
        out.computeUnits = report.computeUnits;
        out.memoryUnits = report.memoryUnits;
        out.matTables = report.matTables;
        out.latencyNs = report.latencyNs;
        out.throughputGpps = report.throughputGpps;
        return out;
      }
      case ScheduleNode::Kind::kSequential: {
        out.throughputGpps = std::numeric_limits<double>::infinity();
        for (const auto &child : node.children) {
            ScheduleResources sub = composeResources(child, reports);
            out.computeUnits += sub.computeUnits;
            out.memoryUnits += sub.memoryUnits;
            out.matTables += sub.matTables;
            out.latencyNs += sub.latencyNs;
            out.throughputGpps =
                std::min(out.throughputGpps, sub.throughputGpps);
        }
        return out;
      }
      case ScheduleNode::Kind::kParallel: {
        out.throughputGpps = std::numeric_limits<double>::infinity();
        for (const auto &child : node.children) {
            ScheduleResources sub = composeResources(child, reports);
            out.computeUnits += sub.computeUnits;
            out.memoryUnits += sub.memoryUnits;
            out.matTables += sub.matTables;
            out.latencyNs = std::max(out.latencyNs, sub.latencyNs);
            out.throughputGpps =
                std::min(out.throughputGpps, sub.throughputGpps);
        }
        return out;
      }
    }
    return out;
}

namespace {

/** Execute one row through the DAG; returns (features', label). */
std::pair<std::vector<double>, int>
executeRow(const ScheduleNode &node,
           const std::map<std::string, ir::ModelIr> &models,
           const backends::Platform &platform,
           const std::vector<double> &features)
{
    switch (node.kind) {
      case ScheduleNode::Kind::kModel: {
        auto it = models.find(node.spec->name);
        if (it == models.end())
            throw std::runtime_error("executeSchedule: missing model for " +
                                     node.spec->name);
        math::Matrix row(1, features.size());
        for (std::size_t c = 0; c < features.size(); ++c)
            row(0, c) = features[c];
        int label = platform.evaluate(it->second, row).front();
        return {features, label};
      }
      case ScheduleNode::Kind::kSequential: {
        std::vector<double> current = features;
        int label = 0;
        for (std::size_t i = 0; i < node.children.size(); ++i) {
            auto [out_features, out_label] =
                executeRow(node.children[i], models, platform, current);
            label = out_label;
            if (i + 1 < node.children.size())
                current = node.ioMap.mapper(out_features, out_label);
        }
        return {current, label};
      }
      case ScheduleNode::Kind::kParallel: {
        int label = 0;
        for (const auto &child : node.children) {
            auto [out_features, out_label] =
                executeRow(child, models, platform, features);
            (void)out_features;
            label = out_label;  // last branch's verdict, by convention.
        }
        return {features, label};
      }
    }
    return {features, 0};
}

}  // namespace

std::vector<int>
executeSchedule(const ScheduleNode &node,
                const std::map<std::string, ir::ModelIr> &models,
                const backends::Platform &platform, const math::Matrix &x)
{
    std::vector<int> labels(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i)
        labels[i] = executeRow(node, models, platform, x.row(i)).second;
    return labels;
}

}  // namespace homunculus::core
