#include "core/schedule.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace homunculus::core {

ScheduleResources
composeResources(
    const ScheduleNode &node,
    const std::map<std::string, backends::ResourceReport> &reports)
{
    ScheduleResources out;
    switch (node.kind) {
      case ScheduleNode::Kind::kModel: {
        auto it = reports.find(node.spec->name);
        if (it == reports.end())
            throw std::runtime_error("composeResources: missing report for " +
                                     node.spec->name);
        const backends::ResourceReport &report = it->second;
        out.computeUnits = report.computeUnits;
        out.memoryUnits = report.memoryUnits;
        out.matTables = report.matTables;
        out.latencyNs = report.latencyNs;
        out.throughputGpps = report.throughputGpps;
        return out;
      }
      case ScheduleNode::Kind::kSequential: {
        out.throughputGpps = std::numeric_limits<double>::infinity();
        for (const auto &child : node.children) {
            ScheduleResources sub = composeResources(child, reports);
            out.computeUnits += sub.computeUnits;
            out.memoryUnits += sub.memoryUnits;
            out.matTables += sub.matTables;
            out.latencyNs += sub.latencyNs;
            out.throughputGpps =
                std::min(out.throughputGpps, sub.throughputGpps);
        }
        return out;
      }
      case ScheduleNode::Kind::kParallel: {
        out.throughputGpps = std::numeric_limits<double>::infinity();
        for (const auto &child : node.children) {
            ScheduleResources sub = composeResources(child, reports);
            out.computeUnits += sub.computeUnits;
            out.memoryUnits += sub.memoryUnits;
            out.matTables += sub.matTables;
            out.latencyNs = std::max(out.latencyNs, sub.latencyNs);
            out.throughputGpps =
                std::min(out.throughputGpps, sub.throughputGpps);
        }
        return out;
      }
    }
    return out;
}

namespace {

/**
 * Batched DAG execution result. `features` is populated only by
 * sequential nodes (whose internal IoMaps may transform the feature
 * matrix); model leaves and parallel nodes pass their input through
 * unchanged, which callers read from their own copy instead of paying a
 * matrix copy per leaf.
 */
struct BatchResult
{
    math::Matrix features;     ///< set iff the node is kSequential.
    std::vector<int> labels;   ///< final label per row.
};

/**
 * Execute the DAG over a whole batch at once so each model node issues
 * one batched Platform::evaluate (plan-compiled once per node) instead
 * of a 1-row evaluation per packet. Per-row labels are identical to the
 * historical row-at-a-time walk because every backend classifies rows
 * independently.
 */
BatchResult
executeNode(const ScheduleNode &node,
            const std::map<std::string, ir::ModelIr> &models,
            const backends::Platform &platform, const math::Matrix &x)
{
    switch (node.kind) {
      case ScheduleNode::Kind::kModel: {
        auto it = models.find(node.spec->name);
        if (it == models.end())
            throw std::runtime_error("executeSchedule: missing model for " +
                                     node.spec->name);
        return {{}, platform.evaluate(it->second, x)};
      }
      case ScheduleNode::Kind::kSequential: {
        math::Matrix current = x;
        std::vector<int> labels(x.rows(), 0);
        for (std::size_t i = 0; i < node.children.size(); ++i) {
            const ScheduleNode &child = node.children[i];
            BatchResult result = executeNode(child, models, platform,
                                             current);
            labels = std::move(result.labels);
            if (i + 1 < node.children.size()) {
                // Apply the node's IoMap between stages, row by row (the
                // mapper is a scalar contract; the models stay batched).
                // A sequential child hands its internally-mapped features
                // forward; every other child passes its input through.
                const math::Matrix &outgoing =
                    child.kind == ScheduleNode::Kind::kSequential
                        ? result.features
                        : current;
                std::vector<std::vector<double>> mapped;
                mapped.reserve(outgoing.rows());
                for (std::size_t r = 0; r < outgoing.rows(); ++r)
                    mapped.push_back(
                        node.ioMap.mapper(outgoing.row(r), labels[r]));
                current = math::Matrix::fromRows(mapped);
            }
        }
        return {std::move(current), std::move(labels)};
      }
      case ScheduleNode::Kind::kParallel: {
        // Branches each see the original features; the last branch's
        // verdict wins, by convention.
        std::vector<int> labels(x.rows(), 0);
        for (const auto &child : node.children)
            labels = executeNode(child, models, platform, x).labels;
        return {{}, std::move(labels)};
      }
    }
    return {{}, std::vector<int>(x.rows(), 0)};
}

}  // namespace

std::vector<int>
executeSchedule(const ScheduleNode &node,
                const std::map<std::string, ir::ModelIr> &models,
                const backends::Platform &platform, const math::Matrix &x)
{
    if (x.rows() == 0)
        return {};
    return executeNode(node, models, platform, x).labels;
}

}  // namespace homunculus::core
