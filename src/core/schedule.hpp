/**
 * @file
 * Schedule-DAG resource composition and chained execution (paper §5.1.3).
 *
 * Multiple models share one data plane via the > (sequential) and |
 * (parallel) operators. Resource totals are strategy-independent — the
 * glue logic that routes metadata between models folds into CUs already
 * in use (Table 3's observation) — while latency composes additively on
 * sequential paths and as a maximum across parallel branches, and
 * throughput is the minimum over all members (paper §3.2.1's consistency
 * rule).
 */
#pragma once

#include <map>
#include <string>

#include "backends/resource_report.hpp"
#include "core/alchemy.hpp"

namespace homunculus::core {

/** Aggregated resources/performance of a whole schedule. */
struct ScheduleResources
{
    std::size_t computeUnits = 0;
    std::size_t memoryUnits = 0;
    std::size_t matTables = 0;
    double latencyNs = 0.0;
    double throughputGpps = 0.0;
};

/**
 * Compose per-model reports over the schedule DAG.
 *
 * @param node the schedule tree
 * @param reports per-leaf resource reports keyed by spec name; every leaf
 *        of @p node must be present
 */
ScheduleResources composeResources(
    const ScheduleNode &node,
    const std::map<std::string, backends::ResourceReport> &reports);

/**
 * Execute a schedule of trained models over a feature matrix. Sequential
 * edges apply the node's IoMap between stages (identity keeps the feature
 * vector; appendLabel requires the downstream model to expect the wider
 * input). Parallel branches each see the original features; the result
 * is the last branch's output (branches are independent applications).
 *
 * @param node schedule tree
 * @param models trained IR per spec name
 * @param platform backend used to run each model
 * @param x input features
 * @return final label per row
 */
std::vector<int> executeSchedule(
    const ScheduleNode &node,
    const std::map<std::string, ir::ModelIr> &models,
    const backends::Platform &platform, const math::Matrix &x);

}  // namespace homunculus::core
