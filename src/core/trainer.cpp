#include "core/trainer.hpp"

#include <chrono>

#include "ml/metrics.hpp"

namespace homunculus::core {

namespace {

/** Score predictions under the spec's objective metric. */
double
scoreMetric(Metric metric, const std::vector<int> &truth,
            const std::vector<int> &predicted, int num_classes)
{
    switch (metric) {
      case Metric::kF1:
        return ml::f1ForTask(truth, predicted, num_classes);
      case Metric::kAccuracy:
        return ml::accuracy(truth, predicted);
      case Metric::kVMeasure:
        return ml::vMeasure(truth, predicted);
    }
    return 0.0;
}

ir::ModelIr
trainDnn(const opt::Configuration &config, const ModelSpec &spec,
         const ml::DataSplit &split, std::uint64_t seed)
{
    ml::MlpConfig mlp_config;
    mlp_config.inputDim = split.train.numFeatures();
    mlp_config.numClasses = split.train.numClasses;
    auto num_layers = static_cast<std::size_t>(config.integer("num_layers"));
    for (std::size_t l = 0; l < num_layers; ++l) {
        mlp_config.hiddenLayers.push_back(static_cast<std::size_t>(
            config.integer("width_" + std::to_string(l))));
    }
    mlp_config.learningRate = config.real("learning_rate");
    mlp_config.batchSize =
        static_cast<std::size_t>(config.integer("batch_size"));
    mlp_config.activation =
        ml::activationFromName(config.categorical("activation"));
    mlp_config.epochs = kCandidateTrainEpochs;
    mlp_config.seed = seed;

    ml::Mlp mlp(mlp_config);
    mlp.train(split.train);
    return ir::lowerMlp(mlp, common::FixedPointFormat::q88(), spec.name);
}

ir::ModelIr
trainSvm(const opt::Configuration &config, const ModelSpec &spec,
         const ml::DataSplit &split, std::uint64_t seed)
{
    ml::SvmConfig svm_config;
    svm_config.learningRate = config.real("learning_rate");
    svm_config.regularization = config.real("regularization");
    svm_config.epochs = static_cast<std::size_t>(config.integer("epochs"));
    svm_config.seed = seed;

    ml::LinearSvm svm(svm_config);
    svm.train(split.train);
    return ir::lowerSvm(svm, common::FixedPointFormat::q88(), spec.name,
                        split.train.numFeatures());
}

ir::ModelIr
trainKMeans(const opt::Configuration &config, const ModelSpec &spec,
            const ml::DataSplit &split, std::uint64_t seed)
{
    ml::KMeansConfig km_config;
    km_config.numClusters =
        static_cast<std::size_t>(config.integer("num_clusters"));
    km_config.maxIterations =
        static_cast<std::size_t>(config.integer("max_iterations"));
    km_config.seed = seed;

    ml::KMeans kmeans(km_config);
    kmeans.fit(split.train.x);
    return ir::lowerKMeans(kmeans, common::FixedPointFormat::q88(),
                           spec.name, split.train.numFeatures());
}

ir::ModelIr
trainTree(const opt::Configuration &config, const ModelSpec &spec,
          const ml::DataSplit &split, std::uint64_t seed)
{
    ml::TreeConfig tree_config;
    tree_config.maxDepth =
        static_cast<std::size_t>(config.integer("max_depth"));
    tree_config.minSamplesLeaf =
        static_cast<std::size_t>(config.integer("min_samples_leaf"));
    tree_config.seed = seed;

    ml::DecisionTreeClassifier tree(tree_config);
    tree.train(split.train);
    return ir::lowerDecisionTree(tree, common::FixedPointFormat::q88(),
                                 spec.name, split.train.numFeatures());
}

}  // namespace

CandidateEvaluation
evaluateCandidate(Algorithm algorithm, const opt::Configuration &config,
                  const ModelSpec &spec, const ml::DataSplit &split,
                  const backends::Platform &platform, std::uint64_t seed,
                  const backends::EvalOptions &eval)
{
    auto started = std::chrono::steady_clock::now();

    CandidateEvaluation evaluation;
    switch (algorithm) {
      case Algorithm::kDnn:
        evaluation.model = trainDnn(config, spec, split, seed);
        break;
      case Algorithm::kSvm:
        evaluation.model = trainSvm(config, spec, split, seed);
        break;
      case Algorithm::kKMeans:
        evaluation.model = trainKMeans(config, spec, split, seed);
        break;
      case Algorithm::kDecisionTree:
        evaluation.model = trainTree(config, spec, split, seed);
        break;
    }

    // Scaler provenance: the split's training-time standardization (when
    // the loader recorded one) ships inside the artifact, so serving
    // reapplies the exact transform instead of refitting on traffic.
    // Recorded even when empty — "trained on raw features" is a
    // statement too, and keeps serving from inventing a scaler.
    evaluation.model.scalerMeans = split.scalerMeans;
    evaluation.model.scalerStds = split.scalerStds;
    evaluation.model.scalerRecorded = true;

    evaluation.report = platform.estimate(evaluation.model);
    if (evaluation.report.feasible) {
        // One batched evaluate per candidate: the backend compiles the
        // model once (ir::ExecutablePlan on plan-backed platforms, a MAT
        // program on tofino) and reuses it across the whole partition —
        // this is the innermost loop of the black-box search (§3.2.4).
        // eval shards the partition across cores and reuses the spec's
        // per-format quantization cache without changing the score.
        std::vector<int> predicted =
            platform.evaluate(evaluation.model, split.test.x, eval);
        evaluation.objective = scoreMetric(spec.optimizationMetric,
                                           split.test.y, predicted,
                                           split.test.numClasses);
    }

    evaluation.trainSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    return evaluation;
}

opt::EvalResult
toEvalResult(const CandidateEvaluation &evaluation)
{
    opt::EvalResult result;
    result.objective = evaluation.objective;
    result.feasible = evaluation.report.feasible;
    result.metrics["cus"] =
        static_cast<double>(evaluation.report.computeUnits);
    result.metrics["mus"] =
        static_cast<double>(evaluation.report.memoryUnits);
    result.metrics["mat_tables"] =
        static_cast<double>(evaluation.report.matTables);
    result.metrics["latency_ns"] = evaluation.report.latencyNs;
    result.metrics["throughput_gpps"] = evaluation.report.throughputGpps;
    result.metrics["params"] =
        static_cast<double>(evaluation.model.paramCount());
    return result;
}

}  // namespace homunculus::core
