/**
 * @file
 * Candidate training and evaluation (paper §3.2.4).
 *
 * One black-box evaluation: instantiate the algorithm with the suggested
 * hyperparameters, train on the spec's training partition, lower the
 * trained model to the quantized ModelIr, ask the backend for a resource
 * report, and — when feasible — run the *backend's own simulator* over
 * the test partition to score the objective metric. The score therefore
 * reflects the deployed fixed-point artifact, not the float model.
 */
#pragma once

#include <cstdint>

#include "backends/platform.hpp"
#include "core/alchemy.hpp"
#include "opt/bayes_opt.hpp"

namespace homunculus::core {

/** Everything one candidate evaluation produced. */
struct CandidateEvaluation
{
    ir::ModelIr model;
    backends::ResourceReport report;
    double objective = 0.0;   ///< metric on the test partition.
    double trainSeconds = 0.0;
};

/**
 * Train + lower + estimate + test one configuration.
 *
 * @param algorithm family to instantiate
 * @param config hyperparameters suggested by the optimizer
 * @param spec the model spec (metric, name)
 * @param split train/test data
 * @param platform the backend target
 * @param seed training determinism seed
 * @param eval host-side execution knobs for the scoring pass (row-shard
 *        width, per-format quantization cache); never changes the score
 */
CandidateEvaluation evaluateCandidate(Algorithm algorithm,
                                      const opt::Configuration &config,
                                      const ModelSpec &spec,
                                      const ml::DataSplit &split,
                                      const backends::Platform &platform,
                                      std::uint64_t seed,
                                      const backends::EvalOptions &eval = {});

/** Adapt a CandidateEvaluation into the optimizer's EvalResult. */
opt::EvalResult toEvalResult(const CandidateEvaluation &evaluation);

/** Fixed training epochs used across candidate runs (fair comparison). */
constexpr std::size_t kCandidateTrainEpochs = 25;

}  // namespace homunculus::core
