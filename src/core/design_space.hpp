/**
 * @file
 * Automated design-space creation (paper §3.2.2).
 *
 * For each candidate algorithm family, builds the bounded hyperparameter
 * space the Bayesian optimizer searches. Bounds are derived from the
 * ModelSpec's overrides and the target platform's resource envelope —
 * e.g. the KMeans cluster-count upper bound is capped by the MAT budget
 * (one table per cluster), which is the paper's "physical resources
 * reduce the design space" mechanism made concrete.
 */
#pragma once

#include "core/alchemy.hpp"
#include "opt/search_space.hpp"

namespace homunculus::core {

/** Build the search space for one (algorithm, spec, platform) triple. */
opt::SearchSpace buildDesignSpace(Algorithm algorithm,
                                  const ModelSpec &spec,
                                  const backends::Platform &platform);

/**
 * Candidate selection (paper §3.2.1): the algorithm families worth
 * searching for this spec on this platform. Starts from the spec's pool
 * (or every family), drops families the platform cannot host, and drops
 * families whose *minimal* viable configuration already violates the
 * resource envelope.
 */
std::vector<Algorithm> selectCandidates(const ModelSpec &spec,
                                        const backends::Platform &platform,
                                        std::size_t input_dim,
                                        int num_classes);

}  // namespace homunculus::core
