/**
 * @file
 * Model fusion (paper §3.2.5, Table 4).
 *
 * Models trained on datasets with largely overlapping feature sets learn
 * largely overlapping representations; Homunculus fuses such models into
 * one network serving both datasets, eliminating duplicate weights and
 * inter-model plumbing. Fusion here is dataset-level: when the feature
 * overlap clears a threshold, the training partitions are unioned and a
 * single model is searched for the combined task.
 */
#pragma once

#include "core/alchemy.hpp"
#include "ml/dataset.hpp"

namespace homunculus::core {

/** Result of comparing two datasets' feature sets. */
struct FeatureOverlap
{
    double fraction = 0.0;  ///< |shared| / |union| by feature name.
    std::vector<std::string> shared;
};

/** Assess feature-name overlap between two datasets. */
FeatureOverlap assessFeatureOverlap(const ml::Dataset &a,
                                    const ml::Dataset &b);

/** Fusion policy: fuse when overlap clears this fraction. */
constexpr double kFusionOverlapThreshold = 0.75;

/** Whether the framework would fuse these two datasets. */
bool shouldFuse(const ml::Dataset &a, const ml::Dataset &b);

/** Union two splits (same schema) into one fused split. */
ml::DataSplit fuseSplits(const ml::DataSplit &a, const ml::DataSplit &b);

/**
 * Split one dataset into two halves by rows — the Table 4 experiment's
 * setup, where one application's data is artificially divided between two
 * "separate" models before fusion recovers the sharing.
 */
std::pair<ml::DataSplit, ml::DataSplit> halveSplit(const ml::DataSplit &full,
                                                   std::uint64_t seed);

}  // namespace homunculus::core
