#include "core/pipeline_harness.hpp"

#include <chrono>
#include <stdexcept>

namespace homunculus::core {

PipelineHarness::PipelineHarness(ir::ModelIr model,
                                 backends::PlatformPtr platform,
                                 ml::StandardScaler scaler,
                                 net::FeatureExtractor extractor)
    : model_(std::move(model)),
      platform_(std::move(platform)),
      scaler_(std::move(scaler)),
      extractor_(std::move(extractor))
{
    if (!platform_)
        throw std::runtime_error("PipelineHarness: null platform");
    model_.validate();
}

ReplayStats
PipelineHarness::classify(const std::vector<std::vector<double>> &features,
                          std::size_t offered) const
{
    auto started = std::chrono::steady_clock::now();
    ReplayStats stats;
    stats.packetsOffered = offered;
    stats.packetsParsed = features.size();
    if (!features.empty()) {
        math::Matrix x = math::Matrix::fromRows(features);
        x = scaler_.fitted() ? scaler_.transform(x) : x;
        stats.verdicts = platform_->evaluate(model_, x);
        stats.packetsClassified = stats.verdicts.size();

        backends::ResourceReport report = platform_->estimate(model_);
        stats.modelLatencyNs = report.latencyNs;
        stats.modelThroughputGpps = report.throughputGpps;
    }
    stats.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    return stats;
}

ReplayStats
PipelineHarness::replayWire(
    const std::vector<std::vector<std::uint8_t>> &frames) const
{
    std::vector<std::vector<double>> features;
    features.reserve(frames.size());
    for (const auto &frame : frames) {
        auto row = extractor_.extractFromWire(frame);
        if (row)
            features.push_back(std::move(*row));
    }
    return classify(features, frames.size());
}

ReplayStats
PipelineHarness::replay(const std::vector<net::RawPacket> &packets) const
{
    std::vector<std::vector<double>> features;
    features.reserve(packets.size());
    for (const auto &packet : packets)
        features.push_back(extractor_.extract(packet));
    return classify(features, packets.size());
}

}  // namespace homunculus::core
