/**
 * @file
 * The Homunculus compiler driver (paper Figure 2, bottom-to-top flow).
 *
 * generate() runs the full pipeline for every schedule attached to a
 * platform: load the spec's data, select candidate algorithm families,
 * build each family's design space, run constrained Bayesian optimization
 * (training + backend feasibility per evaluation), select the best
 * feasible model across families, and emit the platform program.
 */
#pragma once

#include <map>

#include "core/alchemy.hpp"
#include "core/schedule.hpp"
#include "core/trainer.hpp"

namespace homunculus::core {

/** Knobs of one generate() run. */
struct GenerateOptions
{
    opt::BoConfig bo;            ///< per-candidate-family search budget.
    std::uint64_t seed = 9;      ///< training/search determinism.
    bool emitCode = true;        ///< run the backend code generator.

    GenerateOptions()
    {
        bo.numInitSamples = 5;
        bo.numIterations = 15;
    }
};

/** The winning artifact for one scheduled model spec. */
struct GeneratedModel
{
    std::string specName;
    Algorithm algorithm = Algorithm::kDnn;
    ir::ModelIr model;
    backends::ResourceReport report;
    double objective = 0.0;       ///< metric on the test partition.
    std::string code;             ///< emitted platform program.
    opt::BoResult searchHistory;  ///< winning family's BO trace.
    /** Every family's trace, keyed by algorithm name (regret plots). */
    std::map<std::string, opt::BoResult> perAlgorithm;
};

/** The outcome of compiling one platform's schedules. */
struct GenerationResult
{
    bool success = false;         ///< every spec found a feasible model.
    std::vector<GeneratedModel> models;   ///< one per scheduled leaf spec.
    /** Aggregate resources per schedule (Table 3 accounting). */
    std::vector<ScheduleResources> scheduleResources;

    /** Find a generated model by spec name (nullptr when absent). */
    const GeneratedModel *find(const std::string &spec_name) const;
};

/** Run the compiler for everything scheduled on @p platform. */
GenerationResult generate(PlatformHandle &platform,
                          const GenerateOptions &options = {});

/**
 * Search a single spec on a platform — the inner loop of generate(),
 * exposed for experiments that sweep specs without full schedules.
 */
GeneratedModel searchModel(const ModelSpec &spec, PlatformHandle &platform,
                           const GenerateOptions &options,
                           const ml::DataSplit &split);

}  // namespace homunculus::core
