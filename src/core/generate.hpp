/**
 * @file
 * Legacy one-shot compiler driver — a thin compatibility shim over the
 * staged Compiler / CompileSession API (see compiler.hpp).
 *
 * generate() still runs the full pipeline for every schedule attached to
 * a platform and either returns a GenerationResult or throws
 * std::runtime_error, exactly as it always has; internally it opens a
 * CompileSession and converts error Statuses back into exceptions. New
 * code should prefer core::Compiler, which exposes the stages, progress
 * observation, cancellation, Status diagnostics, and the parallel
 * family-search pool.
 */
#pragma once

#include "core/compiler.hpp"

namespace homunculus::core {

/** Knobs of one generate() run (subset of CompileOptions). */
struct GenerateOptions
{
    opt::BoConfig bo;            ///< per-candidate-family search budget.
    std::uint64_t seed = 9;      ///< training/search determinism.
    bool emitCode = true;        ///< run the backend code generator.

    GenerateOptions()
    {
        bo.numInitSamples = 5;
        bo.numIterations = 15;
    }

    /** The session options this legacy bundle maps onto. */
    CompileOptions toCompileOptions() const;
};

/** The outcome of compiling one platform's schedules. */
struct GenerationResult
{
    bool success = false;         ///< every spec found a feasible model.
    std::vector<GeneratedModel> models;   ///< one per scheduled leaf spec.
    /** Aggregate resources per schedule (Table 3 accounting). */
    std::vector<ScheduleResources> scheduleResources;

    /** Find a generated model by spec name (nullptr when absent). */
    const GeneratedModel *find(const std::string &spec_name) const;
};

/**
 * Run the compiler for everything scheduled on @p platform.
 * @throws std::runtime_error on any compile-stage failure.
 */
GenerationResult generate(PlatformHandle &platform,
                          const GenerateOptions &options = {});

/**
 * Search a single spec on a platform — legacy form of core::searchSpec()
 * that throws instead of returning a Result.
 */
GeneratedModel searchModel(const ModelSpec &spec, PlatformHandle &platform,
                           const GenerateOptions &options,
                           const ml::DataSplit &split);

}  // namespace homunculus::core
