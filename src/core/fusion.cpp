#include "core/fusion.hpp"

#include <algorithm>
#include <set>

#include "common/rng.hpp"

namespace homunculus::core {

FeatureOverlap
assessFeatureOverlap(const ml::Dataset &a, const ml::Dataset &b)
{
    FeatureOverlap overlap;
    std::set<std::string> names_a(a.featureNames.begin(),
                                  a.featureNames.end());
    std::set<std::string> names_b(b.featureNames.begin(),
                                  b.featureNames.end());
    std::set<std::string> unioned = names_a;
    unioned.insert(names_b.begin(), names_b.end());
    for (const auto &name : names_a)
        if (names_b.count(name))
            overlap.shared.push_back(name);
    overlap.fraction =
        unioned.empty()
            ? 0.0
            : static_cast<double>(overlap.shared.size()) /
                  static_cast<double>(unioned.size());
    return overlap;
}

bool
shouldFuse(const ml::Dataset &a, const ml::Dataset &b)
{
    return assessFeatureOverlap(a, b).fraction >= kFusionOverlapThreshold;
}

ml::DataSplit
fuseSplits(const ml::DataSplit &a, const ml::DataSplit &b)
{
    ml::DataSplit fused;
    fused.train = a.train.concat(b.train);
    fused.test = a.test.concat(b.test);
    return fused;
}

std::pair<ml::DataSplit, ml::DataSplit>
halveSplit(const ml::DataSplit &full, std::uint64_t seed)
{
    common::Rng rng(seed);

    auto halve = [&rng](const ml::Dataset &data) {
        std::vector<std::size_t> perm = rng.permutation(data.numSamples());
        std::size_t mid = perm.size() / 2;
        std::vector<std::size_t> first(perm.begin(),
                                       perm.begin() +
                                           static_cast<std::ptrdiff_t>(mid));
        std::vector<std::size_t> second(
            perm.begin() + static_cast<std::ptrdiff_t>(mid), perm.end());
        return std::make_pair(data.selectSamples(first),
                              data.selectSamples(second));
    };

    auto [train_a, train_b] = halve(full.train);
    auto [test_a, test_b] = halve(full.test);

    ml::DataSplit part1{std::move(train_a), std::move(test_a)};
    ml::DataSplit part2{std::move(train_b), std::move(test_b)};
    return {part1, part2};
}

}  // namespace homunculus::core
