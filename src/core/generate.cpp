#include "core/generate.hpp"

#include <stdexcept>

namespace homunculus::core {

CompileOptions
GenerateOptions::toCompileOptions() const
{
    CompileOptions options;
    options.bo = bo;
    options.seed = seed;
    options.emitCode = emitCode;
    return options;
}

const GeneratedModel *
GenerationResult::find(const std::string &spec_name) const
{
    for (const auto &model : models)
        if (model.specName == spec_name)
            return &model;
    return nullptr;
}

GenerationResult
generate(PlatformHandle &platform, const GenerateOptions &options)
{
    Compiler compiler(options.toCompileOptions());
    Result<CompileReport> compiled = compiler.compile(platform);
    if (!compiled.isOk())
        throw std::runtime_error("generate: " +
                                 compiled.status().toString());

    GenerationResult result;
    result.models = std::move(compiled.value().models);
    result.scheduleResources =
        std::move(compiled.value().scheduleResources);
    result.success = !result.models.empty();
    return result;
}

GeneratedModel
searchModel(const ModelSpec &spec, PlatformHandle &platform,
            const GenerateOptions &options, const ml::DataSplit &split)
{
    Result<GeneratedModel> outcome =
        searchSpec(spec, platform, options.toCompileOptions(), split);
    if (!outcome.isOk())
        throw std::runtime_error("generate: " +
                                 outcome.status().toString());
    return std::move(outcome.value());
}

}  // namespace homunculus::core
