#include "core/generate.hpp"

#include <stdexcept>

#include "common/logging.hpp"
#include "common/string_util.hpp"
#include "core/design_space.hpp"

namespace homunculus::core {

const GeneratedModel *
GenerationResult::find(const std::string &spec_name) const
{
    for (const auto &model : models)
        if (model.specName == spec_name)
            return &model;
    return nullptr;
}

GeneratedModel
searchModel(const ModelSpec &spec, PlatformHandle &platform,
            const GenerateOptions &options, const ml::DataSplit &split)
{
    const backends::Platform &target = platform.platform();
    std::vector<Algorithm> candidates = selectCandidates(
        spec, target, split.train.numFeatures(), split.train.numClasses);
    if (candidates.empty())
        throw std::runtime_error("generate: no feasible algorithm family "
                                 "for spec '" + spec.name + "' on " +
                                 target.name());

    GeneratedModel winner;
    winner.specName = spec.name;
    bool have_winner = false;

    // "Parallel candidate runs" (paper §3.2.1): each family gets an
    // independent optimization run; the final selection is the best
    // feasible result across families.
    for (Algorithm algorithm : candidates) {
        opt::SearchSpace space = buildDesignSpace(algorithm, spec, target);

        // Cache the best evaluation per family so the winner's IR does
        // not need retraining after the search.
        CandidateEvaluation family_best;
        bool family_has_best = false;

        opt::ObjectiveFn objective =
            [&](const opt::Configuration &config) -> opt::EvalResult {
            CandidateEvaluation evaluation = evaluateCandidate(
                algorithm, config, spec, split, target, options.seed);
            bool better =
                evaluation.report.feasible &&
                (!family_has_best ||
                 evaluation.objective > family_best.objective);
            if (better) {
                family_best = evaluation;
                family_has_best = true;
            }
            return toEvalResult(evaluation);
        };

        opt::BoConfig bo_config = options.bo;
        bo_config.seed = options.seed ^
                         (0x9E37ull * (static_cast<std::uint64_t>(
                                           algorithmKind(algorithm)) + 1));
        opt::BayesianOptimizer optimizer(space, bo_config);
        opt::BoResult search = optimizer.optimize(objective);

        winner.perAlgorithm[algorithmName(algorithm)] = search;
        if (search.foundFeasible && family_has_best &&
            (!have_winner || family_best.objective > winner.objective)) {
            winner.algorithm = algorithm;
            winner.model = family_best.model;
            winner.report = family_best.report;
            winner.objective = family_best.objective;
            winner.searchHistory = search;
            have_winner = true;
        }
        HOM_LOG(kInfo, "generate")
            << spec.name << "/" << algorithmName(algorithm)
            << (search.foundFeasible
                    ? common::format(": best %s=%.4f",
                                     metricName(spec.optimizationMetric)
                                         .c_str(),
                                     search.bestResult.objective)
                    : std::string(": no feasible configuration"));
    }

    if (!have_winner)
        throw std::runtime_error("generate: no feasible model found for "
                                 "spec '" + spec.name + "'");
    if (options.emitCode)
        winner.code = target.generateCode(winner.model);
    return winner;
}

GenerationResult
generate(PlatformHandle &platform, const GenerateOptions &options)
{
    GenerationResult result;
    std::map<std::string, backends::ResourceReport> reports;

    for (const ScheduleNode &schedule : platform.schedules()) {
        for (const ModelSpec *spec : schedule.leafSpecs()) {
            if (!spec || !spec->dataLoader)
                throw std::runtime_error(
                    "generate: scheduled spec lacks a data loader");
            if (result.find(spec->name) != nullptr)
                continue;  // identical spec reused across the DAG.
            ml::DataSplit split = spec->dataLoader();
            GeneratedModel model =
                searchModel(*spec, platform, options, split);
            reports[model.specName] = model.report;
            result.models.push_back(std::move(model));
        }
    }

    for (const ScheduleNode &schedule : platform.schedules())
        result.scheduleResources.push_back(
            composeResources(schedule, reports));

    result.success = !result.models.empty();
    return result;
}

}  // namespace homunculus::core
