#include "core/compiler.hpp"

#include <utility>

#include "common/logging.hpp"
#include "common/string_util.hpp"
#include "core/design_space.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/quant_cache.hpp"

namespace homunculus::core {

std::string
stageName(Stage stage)
{
    switch (stage) {
      case Stage::kIdle: return "idle";
      case Stage::kLoadData: return "loadData";
      case Stage::kSelectFamilies: return "selectFamilies";
      case Stage::kSearchFamilies: return "searchFamilies";
      case Stage::kPickWinner: return "pickWinner";
      case Stage::kEmit: return "emit";
    }
    return "?";
}

const GeneratedModel *
CompileReport::find(const std::string &spec_name) const
{
    for (const auto &model : models)
        if (model.specName == spec_name)
            return &model;
    return nullptr;
}

namespace {

/**
 * One family's full constrained-BO search. Self-contained: every mutable
 * object (search space, surrogate, best-evaluation cache) is local, the
 * RNG seed derives only from (session seed, family), and the platform is
 * used through its const interface — which is what makes the parallel
 * session bit-identical for a fixed seed at any pool width.
 */
FamilySearch
searchOneFamily(Algorithm algorithm, const ModelSpec &spec,
                const backends::Platform &target, const ml::DataSplit &split,
                const CompileOptions &options,
                const backends::EvalOptions &eval,
                const std::function<bool()> &should_stop,
                const std::function<void(std::size_t, std::size_t)>
                    &on_evaluation)
{
    FamilySearch out;
    out.algorithm = algorithm;
    try {
        opt::SearchSpace space = buildDesignSpace(algorithm, spec, target);

        // Cache the best evaluation per family so the winner's IR does
        // not need retraining after the search.
        opt::ObjectiveFn objective =
            [&](const opt::Configuration &config) -> opt::EvalResult {
            CandidateEvaluation evaluation = evaluateCandidate(
                algorithm, config, spec, split, target, options.seed,
                eval);
            bool better =
                evaluation.report.feasible &&
                (!out.hasBest || evaluation.objective > out.best.objective);
            if (better) {
                out.best = evaluation;
                out.hasBest = true;
            }
            return toEvalResult(evaluation);
        };

        opt::BoConfig bo_config = options.bo;
        bo_config.seed = options.seed ^
                         (0x9E37ull * (static_cast<std::uint64_t>(
                                           algorithmKind(algorithm)) + 1));
        // Chain rather than clobber hooks the caller set on options.bo.
        if (std::function<bool()> user_stop = bo_config.shouldStop) {
            bo_config.shouldStop = [user_stop, should_stop] {
                return user_stop() || (should_stop && should_stop());
            };
        } else {
            bo_config.shouldStop = should_stop;
        }
        if (std::function<void(std::size_t, std::size_t)> user_eval =
                bo_config.onEvaluation) {
            bo_config.onEvaluation = [user_eval, on_evaluation](
                                         std::size_t done,
                                         std::size_t total) {
                user_eval(done, total);
                if (on_evaluation)
                    on_evaluation(done, total);
            };
        } else {
            bo_config.onEvaluation = on_evaluation;
        }
        opt::BayesianOptimizer optimizer(space, bo_config);
        out.search = optimizer.optimize(objective);
    } catch (const std::exception &error) {
        out.failed = true;
        out.error = error.what();
    } catch (...) {
        out.failed = true;
        out.error = "unknown exception";
    }
    return out;
}

/** One (spec, family) unit of search work, writing into @p slot. */
struct FamilyWork
{
    const ModelSpec *spec = nullptr;
    const ml::DataSplit *split = nullptr;
    Algorithm algorithm = Algorithm::kDnn;
    FamilySearch *slot = nullptr;
    /** The spec's shared test-partition quantization cache (optional). */
    const runtime::QuantCache *quantCache = nullptr;
};

/**
 * Fan a list of family searches out over the options' pool, wiring
 * cancellation and per-family progress events. CompileSession::
 * searchFamilies and searchSpec() both orchestrate through this one
 * helper, which keeps their behavior — and the determinism guarantee —
 * identical. @p notify must already be serialized (or empty).
 */
void
runFamilySearches(const std::vector<FamilyWork> &work,
                  const backends::Platform &target,
                  const CompileOptions &options,
                  const std::function<void(const ProgressEvent &)> &notify)
{
    CancellationToken token = options.cancelToken;
    auto should_stop = [token] { return token.cancelRequested(); };
    runtime::Executor &pool =
        options.executor != nullptr ? *options.executor
                                    : runtime::Executor::processDefault();
    pool.run(
        options.jobs, work.size(),
        [&](std::size_t index, std::size_t) {
            const FamilyWork &item = work[index];
            auto progress = [&notify, &item](std::size_t done,
                                             std::size_t total) {
                if (!notify)
                    return;
                ProgressEvent event;
                event.stage = Stage::kSearchFamilies;
                event.specName = item.spec->name;
                event.family = algorithmName(item.algorithm);
                event.evalsDone = done;
                event.evalsTotal = total;
                notify(event);
            };
            backends::EvalOptions eval;
            eval.jobs = options.inferJobs;
            eval.quantCache = item.quantCache;
            eval.executor = options.executor;
            *item.slot = searchOneFamily(item.algorithm, *item.spec,
                                         target, *item.split, options,
                                         eval, should_stop, progress);
        });
}

void
logFamilyOutcome(const ModelSpec &spec, const FamilySearch &family)
{
    HOM_LOG(kInfo, "compiler")
        << spec.name << "/" << algorithmName(family.algorithm)
        << (family.search.foundFeasible
                ? common::format(": best %s=%.4f",
                                 metricName(spec.optimizationMetric)
                                     .c_str(),
                                 family.search.bestResult.objective)
                : std::string(": no feasible configuration"));
}

/**
 * Fold one spec's search outcomes into a Status: worker-side exceptions
 * become one INTERNAL status with per-family context, a cancelled search
 * reports CANCELLED, and surviving families get their log line.
 */
Status
foldSearchOutcomes(const ModelSpec &spec,
                   const std::vector<FamilySearch> &searches)
{
    Status internal_error = Status::internal("family search failed");
    bool any_error = false;
    bool any_cancelled = false;
    for (const FamilySearch &family : searches) {
        if (family.failed) {
            any_error = true;
            internal_error.withContext(
                "spec '" + spec.name + "' family " +
                algorithmName(family.algorithm) + ": " +
                (family.error.empty() ? std::string("unknown error")
                                      : family.error));
            continue;
        }
        any_cancelled |= family.search.cancelled;
        logFamilyOutcome(spec, family);
    }
    if (any_error)
        return internal_error;
    if (any_cancelled)
        return Status::cancelled("compilation cancelled during family "
                                 "search");
    return Status::ok();
}

/**
 * Run the emit-stage IR pass pipeline on a winning model and refresh its
 * resource report (passes only ever shrink the artifact, so a feasible
 * model stays feasible). Predictions — and therefore the reported
 * objective — are bit-identical across every registered pass.
 */
Status
runEmitPasses(const CompileOptions &options,
              const backends::Platform &target, GeneratedModel &model)
{
    try {
        ir::PassManager passes;
        if (options.emitPasses.empty()) {
            passes = ir::PassManager::optimizationPipeline();
        } else {
            for (const std::string &name : options.emitPasses)
                passes.append(name);  // throws naming the known passes.
        }
        if (options.passDump)
            passes.setDumpHook(options.passDump);
        if (passes.run(model.model))
            model.report = target.estimate(model.model);
    } catch (const std::exception &error) {
        Status status = Status::invalidArgument(
            "emit passes failed for spec '" + model.specName + "'");
        status.withContext(error.what());
        return status;
    }
    return Status::ok();
}

/** Backend codegen with exceptions converted to an INTERNAL Status. */
Status
emitModelCode(const backends::Platform &target, GeneratedModel &model)
{
    try {
        model.code = target.generateCode(model.model);
    } catch (const std::exception &error) {
        Status status = Status::internal(
            "code generation failed for spec '" + model.specName + "'");
        status.withContext(error.what());
        return status;
    }
    return Status::ok();
}

/** Best feasible family, iterated in candidate order (deterministic). */
Result<GeneratedModel>
pickWinnerFromSearches(const ModelSpec &spec,
                       const std::vector<FamilySearch> &searches)
{
    GeneratedModel winner;
    winner.specName = spec.name;
    bool have_winner = false;

    for (const FamilySearch &family : searches) {
        winner.perAlgorithm[algorithmName(family.algorithm)] =
            family.search;
        if (family.search.foundFeasible && family.hasBest &&
            (!have_winner ||
             family.best.objective > winner.objective)) {
            winner.algorithm = family.algorithm;
            winner.model = family.best.model;
            winner.report = family.best.report;
            winner.objective = family.best.objective;
            winner.searchHistory = family.search;
            have_winner = true;
        }
    }

    if (!have_winner) {
        Status status = Status::infeasible(
            "no feasible model found for spec '" + spec.name + "'");
        for (const FamilySearch &family : searches) {
            status.withContext(
                "family " + algorithmName(family.algorithm) +
                (family.search.history.empty()
                     ? ": no evaluations"
                     : ": no feasible configuration"));
        }
        return status;
    }
    return winner;
}

}  // namespace

// --------------------------------------------------------- CompileSession

CompileSession::CompileSession(PlatformHandle &platform,
                               CompileOptions options)
    : platform_(platform), options_(std::move(options)),
      observerMutex_(std::make_shared<std::mutex>())
{
}

Status
CompileSession::requireStage(Stage expected, const char *stage_name) const
{
    if (completed_ != expected)
        return Status::failedPrecondition(
            std::string(stage_name) + " cannot run now (last completed "
            "stage: " + stageName(completed_) + ")");
    return Status::ok();
}

Status
CompileSession::checkCancelled(const char *stage_name) const
{
    if (options_.cancelToken.cancelRequested())
        return Status::cancelled(std::string("compilation cancelled before ")
                                 + stage_name);
    return Status::ok();
}

void
CompileSession::notify(ProgressEvent event)
{
    if (!options_.observer)
        return;
    std::lock_guard<std::mutex> lock(*observerMutex_);
    options_.observer(event);
}

CompileSession::SpecState *
CompileSession::findSpec(const std::string &spec_name)
{
    for (auto &state : specs_)
        if (state.spec->name == spec_name)
            return &state;
    return nullptr;
}

const CompileSession::SpecState *
CompileSession::findSpec(const std::string &spec_name) const
{
    for (const auto &state : specs_)
        if (state.spec->name == spec_name)
            return &state;
    return nullptr;
}

std::vector<std::string>
CompileSession::specNames() const
{
    std::vector<std::string> names;
    names.reserve(specs_.size());
    for (const auto &state : specs_)
        names.push_back(state.spec->name);
    return names;
}

const std::vector<Algorithm> *
CompileSession::familiesFor(const std::string &spec_name) const
{
    const SpecState *state = findSpec(spec_name);
    return state ? &state->candidates : nullptr;
}

const std::vector<FamilySearch> *
CompileSession::searchesFor(const std::string &spec_name) const
{
    const SpecState *state = findSpec(spec_name);
    return state ? &state->searches : nullptr;
}

Status
CompileSession::loadData()
{
    if (Status status = requireStage(Stage::kIdle, "loadData"); !status)
        return status;
    if (Status status = checkCancelled("loadData"); !status)
        return status;

    Status bad = Status::invalidArgument(
        "scheduled spec lacks a data loader");
    bool any_bad = false;
    for (const ScheduleNode &schedule : platform_.schedules()) {
        for (const ModelSpec *spec : schedule.leafSpecs()) {
            if (!spec) {
                any_bad = true;
                bad.withContext("schedule contains an empty spec node");
                continue;
            }
            if (findSpec(spec->name) != nullptr)
                continue;  // identical spec reused across the DAG.
            if (!spec->dataLoader) {
                any_bad = true;
                bad.withContext("spec '" + spec->name + "'");
                continue;
            }
            SpecState state;
            state.spec = spec;
            specs_.push_back(std::move(state));
        }
    }
    if (any_bad) {
        specs_.clear();
        return bad;
    }

    for (auto &state : specs_) {
        try {
            state.split = state.spec->dataLoader();
        } catch (const std::exception &error) {
            Status status = Status::internal(
                "data loader raised for spec '" + state.spec->name + "'");
            status.withContext(error.what());
            specs_.clear();
            return status;
        }
        ProgressEvent event;
        event.stage = Stage::kLoadData;
        event.specName = state.spec->name;
        event.message = common::format(
            "%zu train / %zu test rows", state.split.train.numSamples(),
            state.split.test.numSamples());
        notify(event);
    }

    completed_ = Stage::kLoadData;
    return Status::ok();
}

Status
CompileSession::selectFamilies()
{
    if (Status status = requireStage(Stage::kLoadData, "selectFamilies");
        !status)
        return status;
    if (Status status = checkCancelled("selectFamilies"); !status)
        return status;

    const backends::Platform &target = platform_.platform();
    Status bad = Status::infeasible("no feasible algorithm family");
    bool any_bad = false;
    for (auto &state : specs_) {
        state.candidates = selectCandidates(
            *state.spec, target, state.split.train.numFeatures(),
            state.split.train.numClasses);
        if (state.candidates.empty()) {
            any_bad = true;
            bad.withContext("spec '" + state.spec->name + "' on " +
                            target.name());
            continue;
        }
        ProgressEvent event;
        event.stage = Stage::kSelectFamilies;
        event.specName = state.spec->name;
        std::string families;
        for (Algorithm algorithm : state.candidates) {
            if (!families.empty())
                families += ", ";
            families += algorithmName(algorithm);
        }
        event.message = families;
        notify(event);
    }
    if (any_bad)
        return bad;

    completed_ = Stage::kSelectFamilies;
    return Status::ok();
}

Status
CompileSession::searchFamilies()
{
    if (Status status =
            requireStage(Stage::kSelectFamilies, "searchFamilies");
        !status)
        return status;
    if (Status status = checkCancelled("searchFamilies"); !status)
        return status;
    // Injected search failure (global injector only): surfaces as a
    // Status like every other stage error, never as a throw — the
    // session API's contract.
    if (runtime::faults::FaultInjector::global().shouldFail(
            runtime::faults::kSiteCompileSearch))
        return Status::internal("fault-injected: compile.search");

    std::vector<FamilyWork> work;
    for (auto &state : specs_) {
        state.searches.assign(state.candidates.size(), {});
        // One quantization cache per spec, shared across its family
        // searches: candidates with the same FixedPointFormat reuse one
        // quantized view of the test partition (thread-safe; see
        // runtime::QuantCache).
        state.quantCache =
            std::make_shared<runtime::QuantCache>(state.split.test.x);
        for (std::size_t f = 0; f < state.candidates.size(); ++f)
            work.push_back({state.spec, &state.split,
                            state.candidates[f], &state.searches[f],
                            state.quantCache.get()});
    }
    runFamilySearches(work, platform_.platform(), options_,
                      [this](const ProgressEvent &event) {
                          notify(event);
                      });

    // Report outcomes sequentially (deterministic log order) and fold
    // worker-side failures / cancellation into a diagnostic Status.
    for (const auto &state : specs_)
        if (Status status = foldSearchOutcomes(*state.spec, state.searches);
            !status)
            return status;
    if (options_.cancelToken.cancelRequested())
        return Status::cancelled("compilation cancelled during family "
                                 "search");

    completed_ = Stage::kSearchFamilies;
    return Status::ok();
}

Status
CompileSession::pickWinner()
{
    if (Status status = requireStage(Stage::kSearchFamilies, "pickWinner");
        !status)
        return status;
    if (Status status = checkCancelled("pickWinner"); !status)
        return status;

    std::map<std::string, backends::ResourceReport> reports;
    for (const auto &state : specs_) {
        Result<GeneratedModel> winner =
            pickWinnerFromSearches(*state.spec, state.searches);
        if (!winner.isOk()) {
            report_ = CompileReport{};
            return winner.status();
        }
        reports[winner->specName] = winner->report;
        ProgressEvent event;
        event.stage = Stage::kPickWinner;
        event.specName = winner->specName;
        event.message = algorithmName(winner->algorithm) + " " +
                        common::format("%s=%.4f",
                                       metricName(state.spec
                                                      ->optimizationMetric)
                                           .c_str(),
                                       winner->objective);
        notify(event);
        report_.models.push_back(std::move(winner.value()));
    }

    for (const ScheduleNode &schedule : platform_.schedules())
        report_.scheduleResources.push_back(
            composeResources(schedule, reports));

    completed_ = Stage::kPickWinner;
    return Status::ok();
}

Status
CompileSession::emit()
{
    if (Status status = requireStage(Stage::kPickWinner, "emit"); !status)
        return status;
    if (Status status = checkCancelled("emit"); !status)
        return status;

    const backends::Platform &target = platform_.platform();
    for (GeneratedModel &model : report_.models) {
        if (Status status = runEmitPasses(options_, target, model); !status)
            return status;
        if (options_.emitCode) {
            if (Status status = emitModelCode(target, model); !status)
                return status;
        }
        ProgressEvent event;
        event.stage = Stage::kEmit;
        event.specName = model.specName;
        event.message = common::format("%zu passes, %zu bytes",
                                       model.model.passes.size(),
                                       model.code.size());
        notify(event);
    }

    completed_ = Stage::kEmit;
    return Status::ok();
}

Status
CompileSession::run()
{
    if (completed_ == Stage::kIdle)
        if (Status status = loadData(); !status)
            return status;
    if (completed_ == Stage::kLoadData)
        if (Status status = selectFamilies(); !status)
            return status;
    if (completed_ == Stage::kSelectFamilies)
        if (Status status = searchFamilies(); !status)
            return status;
    if (completed_ == Stage::kSearchFamilies)
        if (Status status = pickWinner(); !status)
            return status;
    if (completed_ == Stage::kPickWinner)
        if (Status status = emit(); !status)
            return status;
    return Status::ok();
}

// --------------------------------------------------------------- Compiler

Compiler::Compiler(CompileOptions options) : options_(std::move(options))
{
}

CompileSession
Compiler::openSession(PlatformHandle &platform) const
{
    return CompileSession(platform, options_);
}

Result<CompileReport>
Compiler::compile(PlatformHandle &platform) const
{
    CompileSession session(platform, options_);
    if (Status status = session.run(); !status)
        return status;
    return session.takeReport();
}

// ------------------------------------------------------------- searchSpec

Result<GeneratedModel>
searchSpec(const ModelSpec &spec, PlatformHandle &platform,
           const CompileOptions &options, const ml::DataSplit &split)
{
    const backends::Platform &target = platform.platform();
    std::vector<Algorithm> candidates = selectCandidates(
        spec, target, split.train.numFeatures(), split.train.numClasses);
    if (candidates.empty())
        return Status::infeasible("no feasible algorithm family for spec '" +
                                  spec.name + "' on " + target.name());

    std::mutex observer_mutex;
    std::function<void(const ProgressEvent &)> notify;
    if (options.observer)
        notify = [&options, &observer_mutex](const ProgressEvent &event) {
            std::lock_guard<std::mutex> lock(observer_mutex);
            options.observer(event);
        };

    runtime::QuantCache quant_cache(split.test.x);
    std::vector<FamilySearch> searches(candidates.size());
    std::vector<FamilyWork> work;
    work.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i)
        work.push_back({&spec, &split, candidates[i], &searches[i],
                        &quant_cache});
    runFamilySearches(work, target, options, notify);

    if (Status status = foldSearchOutcomes(spec, searches); !status)
        return status;
    if (options.cancelToken.cancelRequested())
        return Status::cancelled(
            "compilation cancelled during family search");

    Result<GeneratedModel> winner = pickWinnerFromSearches(spec, searches);
    if (winner.isOk()) {
        // Same emit contract as CompileSession::emit(): pass pipeline,
        // refreshed report, then codegen.
        if (Status status = runEmitPasses(options, target, winner.value());
            !status)
            return status;
        if (options.emitCode)
            if (Status status = emitModelCode(target, winner.value());
                !status)
                return status;
    }
    return winner;
}

}  // namespace homunculus::core
