/**
 * @file
 * Packet-replay harness: bytes in, verdicts + pipeline statistics out.
 *
 * Composes the full deployed path — wire-format parsing, feature
 * extraction, feature scaling, and the platform's own simulator running
 * the quantized model — over a stream of raw packets. This is the
 * software twin of the paper's end-to-end testbed (§5.2): MoonGen
 * replays traffic through the switch + bump-in-the-wire FPGA; here a
 * packet vector replays through parser + extractor + backend simulator.
 *
 * Classification is a single batched Platform::evaluate per replay: the
 * backend compiles the model once (an ir::ExecutablePlan on plan-backed
 * platforms) and streams the whole feature matrix through it.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "backends/platform.hpp"
#include "ml/preprocess.hpp"
#include "net/feature_extract.hpp"

namespace homunculus::core {

/** Statistics of one replay run. */
struct ReplayStats
{
    std::size_t packetsOffered = 0;
    std::size_t packetsParsed = 0;    ///< malformed packets are dropped.
    std::size_t packetsClassified = 0;
    std::vector<int> verdicts;        ///< one per classified packet.
    double modelLatencyNs = 0.0;      ///< platform-reported per packet.
    double modelThroughputGpps = 0.0;
    double hostSeconds = 0.0;         ///< wall time of the simulation.

    double parseRate() const
    {
        return packetsOffered == 0
                   ? 0.0
                   : static_cast<double>(packetsParsed) /
                         static_cast<double>(packetsOffered);
    }
};

/** The harness: bind a model + platform + preprocessing, then replay. */
class PipelineHarness
{
  public:
    /**
     * @param model the deployed (quantized) model
     * @param platform backend whose simulator executes the model
     * @param scaler fitted feature scaler (same one used in training)
     * @param extractor packet feature extractor
     */
    PipelineHarness(ir::ModelIr model, backends::PlatformPtr platform,
                    ml::StandardScaler scaler,
                    net::FeatureExtractor extractor = {});

    /** Replay serialized packets (wire bytes). */
    ReplayStats replayWire(
        const std::vector<std::vector<std::uint8_t>> &frames) const;

    /** Replay parsed packets (skips the byte-parsing stage). */
    ReplayStats replay(const std::vector<net::RawPacket> &packets) const;

    const ir::ModelIr &model() const { return model_; }

  private:
    ReplayStats classify(const std::vector<std::vector<double>> &features,
                         std::size_t offered) const;

    ir::ModelIr model_;
    backends::PlatformPtr platform_;
    ml::StandardScaler scaler_;
    net::FeatureExtractor extractor_;
};

}  // namespace homunculus::core
