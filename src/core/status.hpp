/**
 * @file
 * Status / Result<T>: the compiler driver's error-reporting vocabulary.
 *
 * The session API reports failures as values instead of bare booleans or
 * exceptions: a Status carries a machine-readable code, a human-readable
 * message, and per-spec context lines (which spec had no feasible model,
 * which family was pruned, ...). Result<T> couples a Status with the
 * value a successful call would produce. The legacy core::generate()
 * shim converts error Statuses back into the exceptions it always threw.
 */
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace homunculus::core {

/** Outcome classes a compile stage can report. */
enum class StatusCode {
    kOk = 0,
    kInvalidArgument,     ///< malformed input (spec without a data loader).
    kFailedPrecondition,  ///< stage called out of order.
    kNotFound,            ///< unknown backend / spec name.
    kInfeasible,          ///< no configuration satisfies the envelope.
    kCancelled,           ///< cooperative cancellation was requested.
    kInternal,            ///< a stage raised unexpectedly.
};

inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kInfeasible: return "INFEASIBLE";
      case StatusCode::kCancelled: return "CANCELLED";
      case StatusCode::kInternal: return "INTERNAL";
    }
    return "?";
}

/** An error (or success) value with diagnostics. */
class Status
{
  public:
    Status() = default;
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status ok() { return {}; }
    static Status
    invalidArgument(std::string message)
    {
        return {StatusCode::kInvalidArgument, std::move(message)};
    }
    static Status
    failedPrecondition(std::string message)
    {
        return {StatusCode::kFailedPrecondition, std::move(message)};
    }
    static Status
    notFound(std::string message)
    {
        return {StatusCode::kNotFound, std::move(message)};
    }
    static Status
    infeasible(std::string message)
    {
        return {StatusCode::kInfeasible, std::move(message)};
    }
    static Status
    cancelled(std::string message)
    {
        return {StatusCode::kCancelled, std::move(message)};
    }
    static Status
    internal(std::string message)
    {
        return {StatusCode::kInternal, std::move(message)};
    }

    bool isOk() const { return code_ == StatusCode::kOk; }
    explicit operator bool() const { return isOk(); }

    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** Attach a per-spec / per-family diagnostic line. */
    Status &
    withContext(std::string note)
    {
        context_.push_back(std::move(note));
        return *this;
    }
    const std::vector<std::string> &context() const { return context_; }

    /** "INFEASIBLE: no feasible model [spec 'ad': ...; spec 'tc': ...]" */
    std::string
    toString() const
    {
        std::string out = statusCodeName(code_);
        if (!message_.empty())
            out += std::string(": ") + message_;
        if (!context_.empty()) {
            out += " [";
            for (std::size_t i = 0; i < context_.size(); ++i) {
                if (i > 0)
                    out += "; ";
                out += context_[i];
            }
            out += "]";
        }
        return out;
    }

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
    std::vector<std::string> context_;
};

/**
 * A Status plus the value a successful call produced. value() on an
 * error Result throws the Status as a std::runtime_error, which keeps
 * crash-on-failure call sites (benches, examples) one-liners.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(Status status) : status_(std::move(status))
    {
        if (status_.isOk())
            status_ = Status::internal("Result constructed from OK status "
                                       "without a value");
    }

    bool isOk() const { return status_.isOk(); }
    explicit operator bool() const { return isOk(); }
    const Status &status() const { return status_; }

    T &
    value() &
    {
        if (!isOk())
            throw std::runtime_error(status_.toString());
        return *value_;
    }
    const T &
    value() const &
    {
        if (!isOk())
            throw std::runtime_error(status_.toString());
        return *value_;
    }
    /** Rvalue access moves: `searchSpec(...).value()` never copies. */
    T &&
    value() &&
    {
        if (!isOk())
            throw std::runtime_error(status_.toString());
        return std::move(*value_);
    }

    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }
    T &operator*() & { return value(); }
    const T &operator*() const & { return value(); }
    T &&operator*() && { return std::move(*this).value(); }

  private:
    Status status_;
    std::optional<T> value_;
};

}  // namespace homunculus::core
