#include "core/alchemy.hpp"

#include <stdexcept>

namespace homunculus::core {

std::string
metricName(Metric metric)
{
    switch (metric) {
      case Metric::kF1: return "f1";
      case Metric::kAccuracy: return "accuracy";
      case Metric::kVMeasure: return "v_measure";
    }
    return "f1";
}

std::string
algorithmName(Algorithm algorithm)
{
    switch (algorithm) {
      case Algorithm::kDnn: return "dnn";
      case Algorithm::kSvm: return "svm";
      case Algorithm::kKMeans: return "kmeans";
      case Algorithm::kDecisionTree: return "decision_tree";
    }
    return "dnn";
}

ir::ModelKind
algorithmKind(Algorithm algorithm)
{
    switch (algorithm) {
      case Algorithm::kDnn: return ir::ModelKind::kMlp;
      case Algorithm::kSvm: return ir::ModelKind::kSvm;
      case Algorithm::kKMeans: return ir::ModelKind::kKMeans;
      case Algorithm::kDecisionTree: return ir::ModelKind::kDecisionTree;
    }
    return ir::ModelKind::kMlp;
}

const std::vector<Algorithm> &
allAlgorithms()
{
    static const std::vector<Algorithm> algorithms = {
        Algorithm::kDnn, Algorithm::kSvm, Algorithm::kKMeans,
        Algorithm::kDecisionTree};
    return algorithms;
}

IoMap
IoMap::identity()
{
    IoMap map;
    map.mapper = [](const std::vector<double> &features, int) {
        return features;
    };
    return map;
}

IoMap
IoMap::appendLabel()
{
    IoMap map;
    map.mapper = [](const std::vector<double> &features, int label) {
        std::vector<double> out = features;
        out.push_back(static_cast<double>(label));
        return out;
    };
    return map;
}

std::size_t
ScheduleNode::modelCount() const
{
    if (kind == Kind::kModel)
        return 1;
    std::size_t total = 0;
    for (const auto &child : children)
        total += child.modelCount();
    return total;
}

std::vector<const ModelSpec *>
ScheduleNode::leafSpecs() const
{
    std::vector<const ModelSpec *> specs;
    if (kind == Kind::kModel) {
        specs.push_back(spec.get());
        return specs;
    }
    for (const auto &child : children) {
        std::vector<const ModelSpec *> sub = child.leafSpecs();
        specs.insert(specs.end(), sub.begin(), sub.end());
    }
    return specs;
}

std::string
ScheduleNode::notation() const
{
    if (kind == Kind::kModel)
        return spec ? spec->name : "?";
    std::string sep = kind == Kind::kSequential ? " > " : " | ";
    std::string out = "(";
    for (std::size_t i = 0; i < children.size(); ++i) {
        if (i > 0)
            out += sep;
        out += children[i].notation();
    }
    out += ")";
    return out;
}

ScheduleNode
leaf(const ModelSpec &spec)
{
    ScheduleNode node;
    node.kind = ScheduleNode::Kind::kModel;
    node.spec = std::make_shared<ModelSpec>(spec);
    return node;
}

namespace {

/** Merge two nodes under a composite kind, flattening same-kind children. */
ScheduleNode
compose(ScheduleNode::Kind kind, ScheduleNode lhs, ScheduleNode rhs)
{
    ScheduleNode node;
    node.kind = kind;
    if (lhs.kind == kind) {
        node.children = std::move(lhs.children);
    } else {
        node.children.push_back(std::move(lhs));
    }
    if (rhs.kind == kind) {
        for (auto &child : rhs.children)
            node.children.push_back(std::move(child));
    } else {
        node.children.push_back(std::move(rhs));
    }
    return node;
}

}  // namespace

ScheduleNode
operator>(const ModelSpec &lhs, const ModelSpec &rhs)
{
    return compose(ScheduleNode::Kind::kSequential, leaf(lhs), leaf(rhs));
}

ScheduleNode
operator>(ScheduleNode lhs, const ModelSpec &rhs)
{
    return compose(ScheduleNode::Kind::kSequential, std::move(lhs),
                   leaf(rhs));
}

ScheduleNode
operator>(ScheduleNode lhs, ScheduleNode rhs)
{
    return compose(ScheduleNode::Kind::kSequential, std::move(lhs),
                   std::move(rhs));
}

ScheduleNode
operator|(const ModelSpec &lhs, const ModelSpec &rhs)
{
    return compose(ScheduleNode::Kind::kParallel, leaf(lhs), leaf(rhs));
}

ScheduleNode
operator|(ScheduleNode lhs, const ModelSpec &rhs)
{
    return compose(ScheduleNode::Kind::kParallel, std::move(lhs), leaf(rhs));
}

ScheduleNode
operator|(ScheduleNode lhs, ScheduleNode rhs)
{
    return compose(ScheduleNode::Kind::kParallel, std::move(lhs),
                   std::move(rhs));
}

PlatformHandle::PlatformHandle(backends::PlatformPtr platform)
    : platform_(std::move(platform))
{
    if (!platform_)
        throw std::runtime_error("PlatformHandle: null platform");
}

void
PlatformHandle::constrain(const backends::PerfConstraints &perf,
                          const ResourceBudget &resources)
{
    budget_ = resources;

    // Copy first: callers commonly pass platform().constraints(), and
    // replacing platform_ below would leave @p perf dangling.
    backends::PerfConstraints envelope = perf;

    // Each backend applies the budget fields that describe its fabric
    // (Taurus grid, MAT tables/entries, FPGA utilization/power caps) and
    // returns a reshaped instance; nullptr means nothing applied.
    if (backends::PlatformPtr rebuilt = platform_->withBudget(resources))
        platform_ = std::move(rebuilt);
    platform_->setConstraints(envelope);
}

void
PlatformHandle::schedule(const ModelSpec &spec)
{
    schedules_.push_back(leaf(spec));
}

void
PlatformHandle::schedule(ScheduleNode node)
{
    schedules_.push_back(std::move(node));
}

namespace Platforms {

namespace {

PlatformHandle
fromRegistry(const std::string &name, std::any typed_config)
{
    backends::BackendParams params;
    params.typedConfig = std::move(typed_config);
    backends::PlatformPtr platform =
        backends::BackendRegistry::instance().create(name, params);
    if (!platform)
        throw std::runtime_error(
            backends::BackendRegistry::instance().unknownTargetMessage(
                name));
    return PlatformHandle(std::move(platform));
}

}  // namespace

PlatformHandle
taurus(backends::TaurusConfig config)
{
    return fromRegistry("taurus", config);
}

PlatformHandle
tofino(backends::MatConfig config)
{
    return fromRegistry("tofino", config);
}

PlatformHandle
fpga(backends::FpgaConfig config)
{
    return fromRegistry("fpga", config);
}

Result<PlatformHandle>
byName(const std::string &name, const backends::BackendParams &params)
{
    auto &registry = backends::BackendRegistry::instance();
    backends::PlatformPtr platform = registry.create(name, params);
    if (!platform)
        return Status::notFound(registry.unknownTargetMessage(name));
    return PlatformHandle(std::move(platform));
}

}  // namespace Platforms

}  // namespace homunculus::core
