/**
 * @file
 * The Alchemy embedded DSL, as a C++ API (paper §3.1, Table 1).
 *
 * The paper embeds Alchemy in Python; this library embeds the same
 * constructs in C++:
 *
 *   Paper construct            | This API
 *   ---------------------------+------------------------------------------
 *   Model(metric, algo, ...)   | ModelSpec{ name, metric, algorithms, ... }
 *   @DataLoader                | DataLoaderFn (any callable -> DataSplit)
 *   Platforms.Taurus() etc.    | Platforms::taurus() / tofino() / fpga()
 *   platform.constrain(...)    | PlatformHandle::constrain(perf, resources)
 *   mdl1 > mdl2, mdl1 | mdl2   | operator>/operator| building ScheduleNode
 *   IOMap(@IOMapper)           | IoMap{ mapper function }
 *   platform.schedule(...)     | PlatformHandle::schedule(node)
 *   homunculus.generate(...)   | core::generate(platform, options)
 */
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "backends/fpga.hpp"
#include "backends/mat_platform.hpp"
#include "backends/platform.hpp"
#include "backends/registry.hpp"
#include "backends/taurus.hpp"
#include "core/status.hpp"
#include "data/loaders.hpp"

namespace homunculus::core {

/** Objective metrics the Model construct accepts. */
enum class Metric { kF1, kAccuracy, kVMeasure };

std::string metricName(Metric metric);

/** Algorithm families the search may draw from. */
enum class Algorithm { kDnn, kSvm, kKMeans, kDecisionTree };

std::string algorithmName(Algorithm algorithm);
ir::ModelKind algorithmKind(Algorithm algorithm);

/** All algorithm families Homunculus knows about. */
const std::vector<Algorithm> &allAlgorithms();

/**
 * Connects a model's inputs/outputs to other components (paper's IOMap /
 * @IOMapper). The mapper rewrites the downstream feature vector given the
 * upstream feature vector and the upstream model's decision.
 */
struct IoMap
{
    using MapperFn = std::function<std::vector<double>(
        const std::vector<double> &upstream_features, int upstream_label)>;

    MapperFn mapper;

    /** Identity wiring: downstream sees the same features. */
    static IoMap identity();

    /** Append the upstream decision as an extra downstream feature. */
    static IoMap appendLabel();
};

/** The Model construct: objectives, algorithm pool, and the data loader. */
struct ModelSpec
{
    std::string name = "model";
    Metric optimizationMetric = Metric::kF1;
    /** Empty = let Homunculus pick from every supported family. */
    std::vector<Algorithm> algorithms;
    data::DataLoaderFn dataLoader;
    /** Optional override of search bounds (max hidden layers etc.). */
    std::size_t maxHiddenLayers = 8;
    std::size_t maxNeuronsPerLayer = 32;
    std::optional<std::size_t> maxClusters;  ///< KMeans k upper bound.
};

/** Composition DAG of scheduled models (paper's > and | operators). */
struct ScheduleNode
{
    enum class Kind { kModel, kSequential, kParallel };

    Kind kind = Kind::kModel;
    std::shared_ptr<ModelSpec> spec;       ///< kModel payload.
    std::vector<ScheduleNode> children;    ///< composite payload.
    IoMap ioMap = IoMap::identity();       ///< wiring for sequential edges.

    /** Number of leaf models in the subtree. */
    std::size_t modelCount() const;

    /** Collect the leaf specs in schedule order. */
    std::vector<const ModelSpec *> leafSpecs() const;

    /** Render the composition as the paper's notation, e.g. "(a > b) | c". */
    std::string notation() const;
};

/** Wrap a spec as a leaf schedule node. */
ScheduleNode leaf(const ModelSpec &spec);

/** Sequential composition (paper operator >). */
ScheduleNode operator>(const ModelSpec &lhs, const ModelSpec &rhs);
ScheduleNode operator>(ScheduleNode lhs, const ModelSpec &rhs);
ScheduleNode operator>(ScheduleNode lhs, ScheduleNode rhs);

/** Parallel composition (paper operator |). */
ScheduleNode operator|(const ModelSpec &lhs, const ModelSpec &rhs);
ScheduleNode operator|(ScheduleNode lhs, const ModelSpec &rhs);
ScheduleNode operator|(ScheduleNode lhs, ScheduleNode rhs);

/**
 * Resource limits the operator can cap a platform to. Lives with the
 * backend interface (each Platform applies its own fields via
 * Platform::withBudget); aliased here for the Alchemy surface.
 */
using ResourceBudget = backends::ResourceBudget;

/** A declared target device plus its constraints and schedule. */
class PlatformHandle
{
  public:
    explicit PlatformHandle(backends::PlatformPtr platform);

    /** Apply performance and resource constraints (paper operator <). */
    void constrain(const backends::PerfConstraints &perf,
                   const ResourceBudget &resources = {});

    /** Schedule a single model or a composition DAG. */
    void schedule(const ModelSpec &spec);
    void schedule(ScheduleNode node);

    backends::Platform &platform() { return *platform_; }
    const backends::Platform &platform() const { return *platform_; }
    backends::PlatformPtr platformPtr() const { return platform_; }

    const std::vector<ScheduleNode> &schedules() const { return schedules_; }
    const ResourceBudget &budget() const { return budget_; }

  private:
    backends::PlatformPtr platform_;
    std::vector<ScheduleNode> schedules_;
    ResourceBudget budget_;
};

/**
 * Factory namespace mirroring the paper's `Platforms` class. Every
 * factory — typed or by name — resolves through the BackendRegistry, so
 * registering a new backend makes it available everywhere at once.
 */
namespace Platforms {

/** A Taurus switch with the given MapReduce grid. */
PlatformHandle taurus(backends::TaurusConfig config = {});

/** A Tofino-style MAT pipeline. */
PlatformHandle tofino(backends::MatConfig config = {});

/** An FPGA SmartNIC / accelerator card. */
PlatformHandle fpga(backends::FpgaConfig config = {});

/**
 * Resolve any registered backend by name ("taurus", "tofino", "fpga",
 * or a plugin's). NOT_FOUND Statuses list the known names.
 */
Result<PlatformHandle> byName(const std::string &name,
                              const backends::BackendParams &params = {});

}  // namespace Platforms

}  // namespace homunculus::core
