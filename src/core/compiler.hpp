/**
 * @file
 * The staged compiler session API (paper Figure 2, bottom-to-top flow).
 *
 * A Compiler holds options; each openSession() yields an independent,
 * reentrant CompileSession that exposes the pipeline as explicit stages:
 *
 *   loadData -> selectFamilies -> searchFamilies -> pickWinner -> emit
 *
 * Stages must run in order (out-of-order calls return FAILED_PRECONDITION)
 * and report Status values with per-spec diagnostics instead of silent
 * booleans. Sessions support a progress-observer callback, cooperative
 * cancellation via CancellationToken, and run the per-family Bayesian-
 * optimization searches of each spec concurrently on a small thread pool
 * (results are bit-identical for a fixed seed regardless of thread count:
 * every family search derives its own seed and owns all of its state).
 *
 * The legacy core::generate() entry point survives as a thin shim over
 * this API (see generate.hpp).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/alchemy.hpp"
#include "core/schedule.hpp"
#include "core/status.hpp"
#include "core/trainer.hpp"
#include "ir/passes.hpp"

namespace homunculus::runtime {
class Executor;
class QuantCache;
}

namespace homunculus::core {

/** Pipeline stages, in execution order. */
enum class Stage {
    kIdle = 0,         ///< session created, nothing run yet.
    kLoadData,
    kSelectFamilies,
    kSearchFamilies,
    kPickWinner,
    kEmit,
};

std::string stageName(Stage stage);

/** One progress notification from a running session. */
struct ProgressEvent
{
    Stage stage = Stage::kIdle;
    std::string specName;   ///< empty for session-level events.
    std::string family;     ///< set for per-family search events.
    std::size_t evalsDone = 0;   ///< family evaluations completed so far.
    std::size_t evalsTotal = 0;  ///< family evaluation budget.
    std::string message;
};

/** Observer callback; may be invoked from worker threads (serialized). */
using ProgressObserver = std::function<void(const ProgressEvent &)>;

/** Shared-state cancellation handle; copy freely across threads. */
class CancellationToken
{
  public:
    CancellationToken()
        : cancelled_(std::make_shared<std::atomic<bool>>(false))
    {
    }

    void requestCancel() const { cancelled_->store(true); }
    bool cancelRequested() const { return cancelled_->load(); }

    /** Re-arm after a cancellation, e.g. before reusing a Compiler
     *  whose options share this token across sessions. */
    void reset() const { cancelled_->store(false); }

  private:
    std::shared_ptr<std::atomic<bool>> cancelled_;
};

/** Knobs of one compile session. */
struct CompileOptions
{
    /**
     * Per-candidate-family search budget. Any shouldStop/onEvaluation
     * hooks set here are chained with (not replaced by) the session's
     * own cancellation/progress wiring, and run unserialized on search
     * worker threads — unlike `observer`, which is serialized.
     */
    opt::BoConfig bo;
    std::uint64_t seed = 9;      ///< training/search determinism.
    bool emitCode = true;        ///< run the backend code generator.
    std::size_t jobs = 1;        ///< family-search pool width (0 = #cores).
    /**
     * Row-shard width for scoring each candidate on its test partition
     * (0 = one per hardware thread, 1 = inline). Orthogonal to `jobs`:
     * `jobs` parallelizes across family searches, `inferJobs`
     * parallelizes inside one candidate's evaluate — useful when specs
     * have few families but large test partitions. Results are
     * bit-identical at any width.
     */
    std::size_t inferJobs = 1;
    /**
     * Worker pool the session dispatches on — both the `jobs`-wide
     * family-search fan-out and every candidate's `inferJobs`-wide
     * scoring shards (threaded down through EvalOptions). nullptr means
     * the process-default runtime::Executor, which serving-time
     * inference shares too, so search and serving draw from one
     * long-lived pool instead of competing spawns. Results never depend
     * on the pool.
     */
    runtime::Executor *executor = nullptr;
    ProgressObserver observer;   ///< optional stage/search callback.
    CancellationToken cancelToken;  ///< cancel from any thread.

    /**
     * IR passes the emit stage runs on every winning model before code
     * generation (homc --passes). Empty selects the default
     * ir::PassManager::optimizationPipeline(); names must be registered
     * in the ir::PassRegistry or emit() fails with INVALID_ARGUMENT.
     * Every registered pass preserves predictions bit-for-bit, so the
     * reported objective still describes the emitted artifact.
     */
    std::vector<std::string> emitPasses;
    ir::PassDumpHook passDump;   ///< fired after each emit-stage pass.

    CompileOptions()
    {
        bo.numInitSamples = 5;
        bo.numIterations = 15;
    }
};

/** The winning artifact for one scheduled model spec. */
struct GeneratedModel
{
    std::string specName;
    Algorithm algorithm = Algorithm::kDnn;
    ir::ModelIr model;
    backends::ResourceReport report;
    double objective = 0.0;       ///< metric on the test partition.
    std::string code;             ///< emitted platform program.
    opt::BoResult searchHistory;  ///< winning family's BO trace.
    /** Every family's trace, keyed by algorithm name (regret plots). */
    std::map<std::string, opt::BoResult> perAlgorithm;
};

/** One family's completed search within a spec. */
struct FamilySearch
{
    Algorithm algorithm = Algorithm::kDnn;
    opt::BoResult search;
    CandidateEvaluation best;  ///< best feasible evaluation's artifacts.
    bool hasBest = false;
    bool failed = false;  ///< the search raised internally.
    std::string error;    ///< diagnostic when failed (may be empty).
};

/** Everything a finished session produced. */
struct CompileReport
{
    std::vector<GeneratedModel> models;  ///< one per scheduled leaf spec.
    /** Aggregate resources per schedule (Table 3 accounting). */
    std::vector<ScheduleResources> scheduleResources;

    /** Find a generated model by spec name (nullptr when absent). */
    const GeneratedModel *find(const std::string &spec_name) const;
};

/**
 * One in-flight compilation of a platform's schedules. Sessions are
 * single-use: each stage runs once, in order. The PlatformHandle must
 * outlive the session and must not be re-scheduled while it runs.
 */
class CompileSession
{
  public:
    CompileSession(PlatformHandle &platform, CompileOptions options);

    /** Stage 1: resolve every scheduled spec's data loader. */
    Status loadData();
    /** Stage 2: candidate algorithm families per spec (paper §3.2.1). */
    Status selectFamilies();
    /** Stage 3: per-family constrained BO searches, possibly parallel. */
    Status searchFamilies();
    /** Stage 4: best feasible model across families, per spec. */
    Status pickWinner();
    /**
     * Stage 5: run the IR pass pipeline (CompileOptions::emitPasses or
     * the default optimization pipeline) on every winning model,
     * refresh its resource report, then generate backend code (codegen
     * skipped when !emitCode).
     */
    Status emit();

    /** Drive every remaining stage in order; stops at the first error. */
    Status run();

    /** The last successfully completed stage. */
    Stage completedStage() const { return completed_; }

    /** Token shared with CompileOptions::cancelToken. */
    CancellationToken cancellation() const { return options_.cancelToken; }

    /** Valid after pickWinner() (code filled in by emit()). */
    const CompileReport &report() const { return report_; }

    /** Move the report out of a finished session (report() is then
     *  empty); avoids copying models/traces for one-shot compiles. */
    CompileReport takeReport() { return std::move(report_); }

    /** Scheduled (deduplicated) spec names, after loadData(). */
    std::vector<std::string> specNames() const;

    /** Candidate families of one spec, after selectFamilies(). */
    const std::vector<Algorithm> *familiesFor(
        const std::string &spec_name) const;

    /** Per-family search outcomes of one spec, after searchFamilies(). */
    const std::vector<FamilySearch> *searchesFor(
        const std::string &spec_name) const;

  private:
    struct SpecState
    {
        const ModelSpec *spec = nullptr;
        ml::DataSplit split;
        std::vector<Algorithm> candidates;
        std::vector<FamilySearch> searches;  ///< candidate order.
        /** Per-format quantized views of split.test.x, shared by every
         *  family search of this spec (see runtime::QuantCache). */
        std::shared_ptr<runtime::QuantCache> quantCache;
    };

    Status requireStage(Stage expected, const char *stage_name) const;
    Status checkCancelled(const char *stage_name) const;
    void notify(ProgressEvent event);
    SpecState *findSpec(const std::string &spec_name);
    const SpecState *findSpec(const std::string &spec_name) const;

    PlatformHandle &platform_;
    CompileOptions options_;
    Stage completed_ = Stage::kIdle;
    std::vector<SpecState> specs_;
    CompileReport report_;
    /** Serializes observer callbacks from search worker threads. */
    std::shared_ptr<std::mutex> observerMutex_;
};

/** The reentrant driver: options + session factory + one-shot compile. */
class Compiler
{
  public:
    explicit Compiler(CompileOptions options = {});

    CompileSession openSession(PlatformHandle &platform) const;

    /** Run a full session and return its report. */
    Result<CompileReport> compile(PlatformHandle &platform) const;

    const CompileOptions &options() const { return options_; }

  private:
    CompileOptions options_;
};

/**
 * Search a single spec on a platform over a preloaded split — the inner
 * loop of a session, exposed for experiments that sweep specs without
 * full schedules. Families run on the same jobs-wide pool.
 */
Result<GeneratedModel> searchSpec(const ModelSpec &spec,
                                  PlatformHandle &platform,
                                  const CompileOptions &options,
                                  const ml::DataSplit &split);

}  // namespace homunculus::core
