#include "core/design_space.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace homunculus::core {

opt::SearchSpace
buildDesignSpace(Algorithm algorithm, const ModelSpec &spec,
                 const backends::Platform &platform)
{
    opt::SearchSpace space;
    switch (algorithm) {
      case Algorithm::kDnn: {
        auto max_layers =
            static_cast<std::int64_t>(std::max<std::size_t>(
                1, spec.maxHiddenLayers));
        space.addInteger("num_layers", 1, max_layers);
        // Per-layer widths; layers beyond num_layers are ignored by the
        // trainer. Ordinal keeps the surrogate's splits meaningful.
        std::vector<double> widths;
        for (std::size_t w : {2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32})
            if (w <= spec.maxNeuronsPerLayer)
                widths.push_back(static_cast<double>(w));
        for (std::int64_t l = 0; l < max_layers; ++l)
            space.addOrdinal("width_" + std::to_string(l), widths);
        space.addReal("learning_rate", 1e-4, 5e-2, /*log_scale=*/true);
        space.addOrdinal("batch_size", {16, 32, 64});
        space.addCategorical("activation", {"relu", "tanh"});
        break;
      }
      case Algorithm::kSvm: {
        space.addReal("learning_rate", 1e-3, 0.2, /*log_scale=*/true);
        space.addReal("regularization", 1e-5, 1e-1, /*log_scale=*/true);
        space.addInteger("epochs", 10, 60);
        break;
      }
      case Algorithm::kKMeans: {
        std::size_t max_k = spec.maxClusters.value_or(8);
        // Physical-resource bound: a MAT backend spends one table per
        // cluster, so the table budget caps k (paper §5.2.2).
        if (const auto *mat = dynamic_cast<const backends::MatPlatform *>(
                &platform)) {
            max_k = std::min(max_k, mat->config().numTables);
        }
        space.addInteger("num_clusters", 2,
                         static_cast<std::int64_t>(
                             std::max<std::size_t>(2, max_k)));
        space.addInteger("max_iterations", 10, 100);
        break;
      }
      case Algorithm::kDecisionTree: {
        std::size_t max_depth = 10;
        // One MAT per tree level: depth is capped by the stage budget.
        if (const auto *mat = dynamic_cast<const backends::MatPlatform *>(
                &platform)) {
            max_depth = std::min(max_depth, mat->config().numTables - 1);
        }
        space.addInteger("max_depth", 2,
                         static_cast<std::int64_t>(
                             std::max<std::size_t>(2, max_depth)));
        space.addInteger("min_samples_leaf", 1, 16);
        break;
      }
    }
    return space;
}

std::vector<Algorithm>
selectCandidates(const ModelSpec &spec, const backends::Platform &platform,
                 std::size_t input_dim, int num_classes)
{
    std::vector<Algorithm> pool =
        spec.algorithms.empty() ? allAlgorithms() : spec.algorithms;

    std::vector<Algorithm> candidates;
    for (Algorithm algorithm : pool) {
        ir::ModelKind kind = algorithmKind(algorithm);
        if (platform.supports(kind) ==
            backends::AlgorithmSupport::kUnsupported) {
            HOM_LOG(kInfo, "candidates")
                << spec.name << ": pruned " << algorithmName(algorithm)
                << " (unsupported on " << platform.name() << ")";
            continue;
        }

        // Resource sanity probe: the smallest viable model of the family
        // must fit; otherwise every BO iteration would be wasted.
        ir::ModelIr probe;
        probe.kind = kind;
        probe.name = spec.name + "_probe";
        probe.inputDim = input_dim;
        probe.numClasses = std::max(2, num_classes);
        switch (kind) {
          case ir::ModelKind::kMlp: {
            ir::QuantizedLayer hidden;
            hidden.inputDim = input_dim;
            hidden.outputDim = 2;
            hidden.weights.assign(input_dim * 2, 0);
            hidden.biases.assign(2, 0);
            ir::QuantizedLayer out;
            out.inputDim = 2;
            out.outputDim = static_cast<std::size_t>(probe.numClasses);
            out.weights.assign(2 * out.outputDim, 0);
            out.biases.assign(out.outputDim, 0);
            probe.layers = {hidden, out};
            break;
          }
          case ir::ModelKind::kKMeans:
            probe.centroids.assign(2, std::vector<std::int32_t>(input_dim, 0));
            break;
          case ir::ModelKind::kSvm:
            probe.svmWeights.assign(
                static_cast<std::size_t>(probe.numClasses),
                std::vector<std::int32_t>(input_dim, 0));
            probe.svmBiases.assign(
                static_cast<std::size_t>(probe.numClasses), 0);
            break;
          case ir::ModelKind::kDecisionTree: {
            ir::IrTreeNode root;
            root.isLeaf = false;
            root.feature = 0;
            root.left = 1;
            root.right = 2;
            ir::IrTreeNode leaf_a, leaf_b;
            leaf_b.classLabel = 1;
            probe.treeNodes = {root, leaf_a, leaf_b};
            probe.treeDepth = 1;
            break;
          }
        }

        backends::ResourceReport report = platform.estimate(probe);
        if (!report.feasible) {
            HOM_LOG(kInfo, "candidates")
                << spec.name << ": pruned " << algorithmName(algorithm)
                << " (minimal config infeasible: "
                << report.infeasibleReason << ")";
            continue;
        }
        candidates.push_back(algorithm);
    }
    return candidates;
}

}  // namespace homunculus::core
